package server

import (
	"sync/atomic"
	"time"

	"xbar/internal/cluster"
)

// latencyBucketsNs are the histogram upper bounds, in nanoseconds:
// 100µs, 1ms, 10ms, 100ms, 1s, 10s, then overflow. A cached blocking
// read lands in the first bucket or two; a cold N=1024 fill in the
// hundreds of milliseconds; anything in the overflow bucket deserves
// a look at /debug/pprof.
var latencyBucketsNs = [...]int64{
	100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000, 10_000_000_000,
}

// endpointMetrics is one endpoint's counters. All fields are atomics;
// observe and snapshot run lock-free.
type endpointMetrics struct {
	requests atomic.Int64
	errors   atomic.Int64
	totalNs  atomic.Int64
	buckets  [len(latencyBucketsNs) + 1]atomic.Int64
}

// Metrics is the server-wide counter set behind GET /metrics. It is
// expvar-style: monotone counters and gauges rendered as one JSON
// document, cheap enough to scrape every second.
type Metrics struct {
	inFlight        atomic.Int64
	cacheHits       atomic.Int64
	cacheMisses     atomic.Int64
	cacheShared     atomic.Int64
	cacheEvictions  atomic.Int64
	solversRecycled atomic.Int64
	writeFailures   atomic.Int64

	scenarioHits      atomic.Int64
	scenarioMisses    atomic.Int64
	scenarioShared    atomic.Int64
	scenarioEvictions atomic.Int64

	endpoints map[string]*endpointMetrics
}

// newMetrics builds the counter set for a fixed endpoint list. The
// map is never mutated after construction, so concurrent observe and
// snapshot need no lock.
func newMetrics(endpoints ...string) *Metrics {
	m := &Metrics{endpoints: make(map[string]*endpointMetrics, len(endpoints))}
	for _, e := range endpoints {
		m.endpoints[e] = &endpointMetrics{}
	}
	return m
}

// observe records one finished request.
func (m *Metrics) observe(endpoint string, d time.Duration, failed bool) {
	e := m.endpoints[endpoint]
	if e == nil {
		return
	}
	e.requests.Add(1)
	if failed {
		e.errors.Add(1)
	}
	ns := d.Nanoseconds()
	e.totalNs.Add(ns)
	i := 0
	for i < len(latencyBucketsNs) && ns > latencyBucketsNs[i] {
		i++
	}
	e.buckets[i].Add(1)
}

// LatencyHistogram is the per-endpoint latency distribution; each
// field counts requests whose total latency was at or below the bound
// (and above the previous one).
type LatencyHistogram struct {
	Le100us int64 `json:"le_100us"`
	Le1ms   int64 `json:"le_1ms"`
	Le10ms  int64 `json:"le_10ms"`
	Le100ms int64 `json:"le_100ms"`
	Le1s    int64 `json:"le_1s"`
	Le10s   int64 `json:"le_10s"`
	Over10s int64 `json:"over_10s"`
}

// EndpointSnapshot is one endpoint's counters at snapshot time.
type EndpointSnapshot struct {
	Requests int64            `json:"requests"`
	Errors   int64            `json:"errors"`
	TotalMs  float64          `json:"total_ms"`
	AvgMs    float64          `json:"avg_ms"`
	Latency  LatencyHistogram `json:"latency"`
}

// CacheSnapshot is the solver cache's counters at snapshot time.
type CacheSnapshot struct {
	Hits            int64 `json:"hits"`
	Misses          int64 `json:"misses"`
	SharedInFlight  int64 `json:"shared_in_flight"`
	Evictions       int64 `json:"evictions"`
	SolversRecycled int64 `json:"solvers_recycled"`
}

// ScenarioCacheSnapshot is the /v1/scenario result cache's counters at
// snapshot time.
type ScenarioCacheSnapshot struct {
	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	SharedInFlight int64 `json:"shared_in_flight"`
	Evictions      int64 `json:"evictions"`
}

// Snapshot is the GET /metrics document. Cluster is present only when
// clustering is enabled, so the single-node document stays
// bit-identical to the pre-cluster daemon's.
type Snapshot struct {
	InFlight      int64                       `json:"in_flight"`
	WriteFailures int64                       `json:"write_failures"`
	Cache         CacheSnapshot               `json:"cache"`
	ScenarioCache ScenarioCacheSnapshot       `json:"scenario_cache"`
	Cluster       *cluster.Snapshot           `json:"cluster,omitempty"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
}

// Snapshot renders the counters. Counters are read individually, not
// under a lock, so a snapshot taken mid-request is approximate — the
// usual monitoring contract.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		InFlight:      m.inFlight.Load(),
		WriteFailures: m.writeFailures.Load(),
		Cache: CacheSnapshot{
			Hits:            m.cacheHits.Load(),
			Misses:          m.cacheMisses.Load(),
			SharedInFlight:  m.cacheShared.Load(),
			Evictions:       m.cacheEvictions.Load(),
			SolversRecycled: m.solversRecycled.Load(),
		},
		ScenarioCache: ScenarioCacheSnapshot{
			Hits:           m.scenarioHits.Load(),
			Misses:         m.scenarioMisses.Load(),
			SharedInFlight: m.scenarioShared.Load(),
			Evictions:      m.scenarioEvictions.Load(),
		},
		Endpoints: make(map[string]EndpointSnapshot, len(m.endpoints)),
	}
	for name, e := range m.endpoints {
		n := e.requests.Load()
		totalMs := float64(e.totalNs.Load()) / 1e6
		es := EndpointSnapshot{
			Requests: n,
			Errors:   e.errors.Load(),
			TotalMs:  totalMs,
			Latency: LatencyHistogram{
				Le100us: e.buckets[0].Load(),
				Le1ms:   e.buckets[1].Load(),
				Le10ms:  e.buckets[2].Load(),
				Le100ms: e.buckets[3].Load(),
				Le1s:    e.buckets[4].Load(),
				Le10s:   e.buckets[5].Load(),
				Over10s: e.buckets[6].Load(),
			},
		}
		if n > 0 {
			es.AvgMs = totalMs / float64(n)
		}
		s.Endpoints[name] = es
	}
	return s
}
