package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"

	"xbar/internal/admission"
	"xbar/internal/core"
	"xbar/internal/floats"
	"xbar/internal/revenue"
)

// ClassSpec is one traffic class of a request. Alpha and Beta are
// interpreted per SwitchSpec.Units: aggregate ("tilde", the paper's
// numerical convention and the default) or per-route.
type ClassSpec struct {
	Name  string  `json:"name,omitempty"`
	A     int     `json:"a"`
	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta,omitempty"`
	Mu    float64 `json:"mu"`
}

// SwitchSpec is the model every /v1 request carries.
type SwitchSpec struct {
	N1      int         `json:"n1"`
	N2      int         `json:"n2"`
	Units   string      `json:"units,omitempty"` // "aggregate" (default) or "route"
	Classes []ClassSpec `json:"classes"`
}

// apiError carries an HTTP status with a client-facing message.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &apiError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// buildSwitch validates a SwitchSpec against the server limits and the
// model constraints and converts it to per-route units. Every float
// is checked finite up front — the solvers' nanguard domain
// preconditions (finite, validated inputs) are enforced at the edge.
func (s *Server) buildSwitch(spec SwitchSpec) (core.Switch, error) {
	return s.buildSwitchFor(spec, nil)
}

// buildSwitchFor is buildSwitch under a dispatch policy: the
// dimension cap follows the policy (checkDims), everything else is
// identical.
func (s *Server) buildSwitchFor(spec SwitchSpec, opt *core.DispatchOptions) (core.Switch, error) {
	if spec.N1 < 1 || spec.N2 < 1 {
		return core.Switch{}, badRequest("switch dimensions %dx%d, must be >= 1x1", spec.N1, spec.N2)
	}
	if err := s.checkDims(spec.N1, spec.N2, opt); err != nil {
		return core.Switch{}, err
	}
	if len(spec.Classes) == 0 {
		return core.Switch{}, badRequest("no traffic classes")
	}
	if len(spec.Classes) > s.cfg.MaxClasses {
		return core.Switch{}, badRequest("%d traffic classes exceed the server limit %d", len(spec.Classes), s.cfg.MaxClasses)
	}
	for i, c := range spec.Classes {
		if !finite(c.Alpha) || !finite(c.Beta) || !finite(c.Mu) {
			return core.Switch{}, badRequest("class %d (%s): alpha, beta and mu must be finite", i, c.Name)
		}
		if c.A < 1 {
			return core.Switch{}, badRequest("class %d (%s): a = %d, must be >= 1", i, c.Name, c.A)
		}
	}
	var sw core.Switch
	switch spec.Units {
	case "", "aggregate":
		agg := make([]core.AggregateClass, len(spec.Classes))
		for i, c := range spec.Classes {
			agg[i] = core.AggregateClass{Name: c.Name, A: c.A, AlphaTilde: c.Alpha, BetaTilde: c.Beta, Mu: c.Mu}
		}
		sw = core.NewSwitch(spec.N1, spec.N2, agg...)
	case "route":
		classes := make([]core.Class, len(spec.Classes))
		for i, c := range spec.Classes {
			classes[i] = core.Class{Name: c.Name, A: c.A, Alpha: c.Alpha, Beta: c.Beta, Mu: c.Mu}
		}
		sw = core.Switch{N1: spec.N1, N2: spec.N2, Classes: classes}
	default:
		return core.Switch{}, badRequest("units %q, want \"aggregate\" or \"route\"", spec.Units)
	}
	if err := sw.Validate(); err != nil {
		return core.Switch{}, &apiError{code: http.StatusUnprocessableEntity, msg: err.Error()}
	}
	return sw, nil
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// normalizeAlg maps the accepted algorithm spellings onto the cache's
// two identifiers; /v1/blocking and /v1/sweep default to Algorithm 1.
func normalizeAlg(a string) (string, error) {
	switch a {
	case "", alg1, "algorithm1":
		return alg1, nil
	case alg2, "algorithm2":
		return alg2, nil
	}
	return "", badRequest("algorithm %q, want alg1 or alg2", a)
}

// ClassResult is one class's measures in a response, in request class
// order. Names are echoed from the request, not the cache: cache keys
// canonicalize names away.
type ClassResult struct {
	Name        string  `json:"name,omitempty"`
	A           int     `json:"a"`
	Blocking    float64 `json:"blocking"`
	NonBlocking float64 `json:"non_blocking"`
	Concurrency float64 `json:"concurrency"`
	Throughput  float64 `json:"throughput"`
	// ErrorBound is the asymptotic tier's self-reported relative-error
	// bound for this class's measures; present only on asymptotic
	// answers.
	ErrorBound float64 `json:"error_bound,omitempty"`
}

// copyFloats clones one measure slice out of a solver Result. The
// sweep layers memoize ResultAt reads, so a Result read off a cached
// entry shares its slices with the entry's lattice memo; response
// documents must carry copies, never views, or the data escapes the
// entry's lock-and-release lifecycle (see gridRow).
func copyFloats(xs []float64) []float64 {
	return append([]float64(nil), xs...)
}

func classResults(spec SwitchSpec, res *core.Result) []ClassResult {
	out := make([]ClassResult, len(res.Blocking))
	for i := range out {
		out[i] = ClassResult{
			Name:        spec.Classes[i].Name,
			A:           spec.Classes[i].A,
			Blocking:    res.Blocking[i],
			NonBlocking: res.NonBlocking[i],
			Concurrency: res.Concurrency[i],
			Throughput:  res.Throughput(i),
		}
		if res.ErrorBound != nil {
			out[i].ErrorBound = res.ErrorBound[i]
		}
	}
	return out
}

// BlockingRequest is the POST /v1/blocking body.
type BlockingRequest struct {
	SwitchSpec
	DispatchSpec
	Algorithm string `json:"algorithm,omitempty"`
}

// BlockingResponse is the POST /v1/blocking reply. Tier is present
// when the request carried a dispatch policy and names the tier that
// answered ("exact" or "asymptotic").
type BlockingResponse struct {
	N1          int           `json:"n1"`
	N2          int           `json:"n2"`
	Method      string        `json:"method"`
	Tier        string        `json:"tier,omitempty"`
	LogG        float64       `json:"log_g"`
	Utilization float64       `json:"utilization"`
	Cached      bool          `json:"cached"`
	Classes     []ClassResult `json:"classes"`
}

func (s *Server) handleBlocking(w http.ResponseWriter, r *http.Request) error {
	body, err := s.readBody(w, r)
	if err != nil {
		return err
	}
	var req BlockingRequest
	if err := decodeBytes(body, &req); err != nil {
		return err
	}
	alg, err := normalizeAlg(req.Algorithm)
	if err != nil {
		return err
	}
	opt, err := s.parseDispatch(req.DispatchSpec)
	if err != nil {
		return err
	}
	sw, err := s.buildSwitchFor(req.SwitchSpec, opt)
	if err != nil {
		return err
	}
	if res, ok, err := s.tryAsymptotic(sw, opt); err != nil {
		return err
	} else if ok {
		s.writeJSON(w, http.StatusOK, BlockingResponse{
			N1: sw.N1, N2: sw.N2,
			Method:      res.Method,
			Tier:        res.Tier,
			LogG:        res.LogG,
			Utilization: res.Utilization(),
			Classes:     classResults(req.SwitchSpec, res),
		})
		return nil
	}
	if s.maybeForward(w, r, body, cacheKey(alg, sw)) {
		return nil
	}
	e, cached, err := s.withEntry(r, alg, sw)
	if err != nil {
		return err
	}
	defer s.cache.release(e)
	if err := e.lock(r.Context()); err != nil {
		return overloaded(err)
	}
	res := e.result()
	resp := BlockingResponse{
		N1: sw.N1, N2: sw.N2,
		Method:      res.Method,
		LogG:        res.LogG,
		Utilization: res.Utilization(),
		Cached:      cached,
		Classes:     classResults(req.SwitchSpec, res),
	}
	if opt != nil {
		resp.Tier = core.TierExact
	}
	e.unlock()
	s.writeJSON(w, http.StatusOK, resp)
	return nil
}

// RevenueRequest is the POST /v1/revenue body. Weights must carry one
// revenue rate per class. Gradients requests the numerical
// dW/d(beta/mu) central differences for bursty classes on top of the
// closed-form dW/drho — they cost extra lattice fills per bursty
// class, the in-lattice reads do not.
type RevenueRequest struct {
	SwitchSpec
	DispatchSpec
	Weights   []float64 `json:"weights"`
	Gradients bool      `json:"gradients,omitempty"`
	Step      float64   `json:"step,omitempty"`
}

// ClassRevenue is one class's revenue measures.
type ClassRevenue struct {
	Name          string   `json:"name,omitempty"`
	Weight        float64  `json:"weight"`
	ShadowCost    float64  `json:"shadow_cost"`
	Profitable    bool     `json:"profitable"`
	GradRhoClosed float64  `json:"grad_rho_closed"`
	GradBetaMu    *float64 `json:"grad_beta_mu,omitempty"`
	// ErrorBound is the asymptotic tier's relative-error bound on the
	// class's underlying measures (see revenue.AsymAnalysis on what it
	// does and does not certify); present only on asymptotic answers.
	ErrorBound float64 `json:"error_bound,omitempty"`
}

// RevenueResponse is the POST /v1/revenue reply. Tier is present when
// the request carried a dispatch policy.
type RevenueResponse struct {
	N1      int            `json:"n1"`
	N2      int            `json:"n2"`
	W       float64        `json:"w"`
	Tier    string         `json:"tier,omitempty"`
	Cached  bool           `json:"cached"`
	Classes []ClassRevenue `json:"classes"`
}

func (s *Server) handleRevenue(w http.ResponseWriter, r *http.Request) error {
	body, err := s.readBody(w, r)
	if err != nil {
		return err
	}
	var req RevenueRequest
	if err := decodeBytes(body, &req); err != nil {
		return err
	}
	opt, err := s.parseDispatch(req.DispatchSpec)
	if err != nil {
		return err
	}
	sw, err := s.buildSwitchFor(req.SwitchSpec, opt)
	if err != nil {
		return err
	}
	if len(req.Weights) != len(sw.Classes) {
		return badRequest("%d weights for %d classes", len(req.Weights), len(sw.Classes))
	}
	for i, wt := range req.Weights {
		if !finite(wt) {
			return badRequest("weight %d is not finite", i)
		}
	}
	step := req.Step
	if floats.Zero(step) {
		step = 1e-4 // omitted (or numerically zero): the default
	}
	if !finite(step) || step <= 0 || step > 0.1 {
		return badRequest("step %v, want 0 < step <= 0.1", req.Step)
	}
	if _, ok, err := s.tryAsymptotic(sw, opt); err != nil {
		return err
	} else if ok {
		resp, err := asymRevenue(req, sw, step)
		if err != nil {
			return err
		}
		s.writeJSON(w, http.StatusOK, resp)
		return nil
	}
	if s.maybeForward(w, r, body, cacheKey(alg1, sw)) {
		return nil
	}
	// Revenue rides the Algorithm 1 cache: the analysis's in-lattice
	// reads and gradient re-solves run on the scaled lattice.
	e, cached, err := s.withEntry(r, alg1, sw)
	if err != nil {
		return err
	}
	defer s.cache.release(e)
	if err := e.lock(r.Context()); err != nil {
		return overloaded(err)
	}
	defer e.unlock()
	an, err := revenue.NewWithSweep(e.sweep, req.Weights, s.cfg.fillOptions())
	if err != nil {
		return badRequest("%v", err)
	}
	resp := RevenueResponse{N1: sw.N1, N2: sw.N2, W: an.W(), Cached: cached}
	if opt != nil {
		resp.Tier = core.TierExact
	}
	for i, c := range sw.Classes {
		cr := ClassRevenue{
			Name:          req.Classes[i].Name,
			Weight:        req.Weights[i],
			ShadowCost:    an.ShadowCost(i),
			Profitable:    an.Profitable(i),
			GradRhoClosed: an.GradientRhoClosed(i),
		}
		if req.Gradients && !c.IsPoisson() && sw.MinN() >= 2 {
			g := an.GradientBetaMu(i, step)
			cr.GradBetaMu = &g
		}
		resp.Classes = append(resp.Classes, cr)
	}
	s.writeJSON(w, http.StatusOK, resp)
	return nil
}

// AdmissionRequest is the POST /v1/admission body: should a class-r
// request be accepted? Two policies:
//
//   - "profitability" (default): accept iff w_r exceeds the shadow
//     cost DeltaW_r(N) — the paper's Section 4 economics. Requires
//     Weights; served off the Algorithm 1 cache.
//   - "reservation": trunk reservation — accept iff the
//     post-acceptance occupancy stays within Limits[r], given the
//     current per-class connection counts State (default: empty
//     switch). Pure arithmetic, no solve.
type AdmissionRequest struct {
	SwitchSpec
	DispatchSpec
	Class   int       `json:"class"`
	Policy  string    `json:"policy,omitempty"`
	Weights []float64 `json:"weights,omitempty"`
	Limits  []int     `json:"limits,omitempty"`
	State   []int     `json:"state,omitempty"`
}

// AdmissionResponse is the POST /v1/admission reply. Tier is present
// when the request carried a dispatch policy and a solve ran (the
// reservation policy is pure arithmetic — no tier).
type AdmissionResponse struct {
	Accept     bool     `json:"accept"`
	Policy     string   `json:"policy"`
	Class      int      `json:"class"`
	Tier       string   `json:"tier,omitempty"`
	Weight     *float64 `json:"weight,omitempty"`
	ShadowCost *float64 `json:"shadow_cost,omitempty"`
	Occupancy  *int     `json:"occupancy,omitempty"`
	Cached     bool     `json:"cached"`
}

func (s *Server) handleAdmission(w http.ResponseWriter, r *http.Request) error {
	body, err := s.readBody(w, r)
	if err != nil {
		return err
	}
	var req AdmissionRequest
	if err := decodeBytes(body, &req); err != nil {
		return err
	}
	opt, err := s.parseDispatch(req.DispatchSpec)
	if err != nil {
		return err
	}
	sw, err := s.buildSwitchFor(req.SwitchSpec, opt)
	if err != nil {
		return err
	}
	if req.Class < 0 || req.Class >= len(sw.Classes) {
		return badRequest("class %d of %d", req.Class, len(sw.Classes))
	}
	switch req.Policy {
	case "", "profitability":
		if len(req.Weights) != len(sw.Classes) {
			return badRequest("profitability policy wants %d weights, got %d", len(sw.Classes), len(req.Weights))
		}
		for i, wt := range req.Weights {
			if !finite(wt) {
				return badRequest("weight %d is not finite", i)
			}
		}
		if _, ok, err := s.tryAsymptotic(sw, opt); err != nil {
			return err
		} else if ok {
			an, err := revenue.NewAsymptotic(sw, req.Weights)
			if err != nil {
				return unprocessable("asymptotic tier: %v", err)
			}
			shadow, err := an.ShadowCost(req.Class)
			if err != nil {
				return unprocessable("asymptotic tier: %v", err)
			}
			s.writeJSON(w, http.StatusOK, AdmissionResponse{
				Accept: req.Weights[req.Class] > shadow, Policy: "profitability", Class: req.Class,
				Tier: core.TierAsymptotic, Weight: &req.Weights[req.Class], ShadowCost: &shadow,
			})
			return nil
		}
		if s.maybeForward(w, r, body, cacheKey(alg1, sw)) {
			return nil
		}
		e, cached, err := s.withEntry(r, alg1, sw)
		if err != nil {
			return err
		}
		defer s.cache.release(e)
		if err := e.lock(r.Context()); err != nil {
			return overloaded(err)
		}
		an, err := revenue.NewWithSweep(e.sweep, req.Weights)
		if err != nil {
			e.unlock()
			return badRequest("%v", err)
		}
		shadow := an.ShadowCost(req.Class)
		accept := an.Profitable(req.Class)
		e.unlock()
		resp := AdmissionResponse{
			Accept: accept, Policy: "profitability", Class: req.Class,
			Weight: &req.Weights[req.Class], ShadowCost: &shadow, Cached: cached,
		}
		if opt != nil {
			resp.Tier = core.TierExact
		}
		s.writeJSON(w, http.StatusOK, resp)
		return nil
	case "reservation":
		if len(req.Limits) != len(sw.Classes) {
			return badRequest("reservation policy wants %d limits, got %d", len(sw.Classes), len(req.Limits))
		}
		state := req.State
		if state == nil {
			state = make([]int, len(sw.Classes))
		}
		if len(state) != len(sw.Classes) {
			return badRequest("state wants %d per-class counts, got %d", len(sw.Classes), len(state))
		}
		for i, k := range state {
			if k < 0 {
				return badRequest("state[%d] = %d is negative", i, k)
			}
		}
		if occ := sw.OccupancyOf(state); occ > sw.MinN() {
			return badRequest("state occupies %d of %d ports", occ, sw.MinN())
		}
		policy, err := admission.TrunkReservation(sw, req.Limits)
		if err != nil {
			return badRequest("%v", err)
		}
		occ := sw.OccupancyOf(state)
		// The policy admits within the reservation limit; port
		// contention still rejects when the switch itself is full.
		accept := policy(state, req.Class) && occ+sw.Classes[req.Class].A <= sw.MinN()
		s.writeJSON(w, http.StatusOK, AdmissionResponse{
			Accept: accept, Policy: "reservation", Class: req.Class, Occupancy: &occ,
		})
		return nil
	}
	return badRequest("policy %q, want profitability or reservation", req.Policy)
}

// SweepPoint selects one sub-switch of a sweep.
type SweepPoint struct {
	N1 int `json:"n1"`
	N2 int `json:"n2"`
}

// SweepRequest is the POST /v1/sweep body: one lattice fill at
// (N1, N2), results for every requested sub-size with the same
// per-route classes (core.SweepSolver semantics — aggregate loads are
// converted once at the full size, not re-normalized per point).
// Empty Points means the square diagonal (1,1)..(minN,minN). Weights,
// when present, adds the revenue W at every point.
type SweepRequest struct {
	SwitchSpec
	DispatchSpec
	Algorithm string       `json:"algorithm,omitempty"`
	Points    []SweepPoint `json:"points,omitempty"`
	Weights   []float64    `json:"weights,omitempty"`
}

// SweepResult is one point of the sweep reply. Blocking and
// Concurrency are in request class order. Tier is present when the
// request carried a dispatch policy — the decision is per point, so
// one sweep can mix exact small sizes with asymptotic large ones —
// and ErrorBound accompanies asymptotic points.
type SweepResult struct {
	N1          int       `json:"n1"`
	N2          int       `json:"n2"`
	Tier        string    `json:"tier,omitempty"`
	Blocking    []float64 `json:"blocking"`
	Concurrency []float64 `json:"concurrency"`
	ErrorBound  []float64 `json:"error_bound,omitempty"`
	W           *float64  `json:"w,omitempty"`
}

// SweepResponse is the POST /v1/sweep reply.
type SweepResponse struct {
	N1      int           `json:"n1"`
	N2      int           `json:"n2"`
	Method  string        `json:"method"`
	Cached  bool          `json:"cached"`
	Results []SweepResult `json:"results"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) error {
	body, err := s.readBody(w, r)
	if err != nil {
		return err
	}
	var req SweepRequest
	if err := decodeBytes(body, &req); err != nil {
		return err
	}
	alg, err := normalizeAlg(req.Algorithm)
	if err != nil {
		return err
	}
	opt, err := s.parseDispatch(req.DispatchSpec)
	if err != nil {
		return err
	}
	sw, err := s.buildSwitchFor(req.SwitchSpec, opt)
	if err != nil {
		return err
	}
	points := req.Points
	if len(points) == 0 {
		points = make([]SweepPoint, sw.MinN())
		for i := range points {
			points[i] = SweepPoint{N1: i + 1, N2: i + 1}
		}
	}
	if len(points) > s.cfg.MaxSweepPoints {
		return badRequest("%d sweep points exceed the server limit %d", len(points), s.cfg.MaxSweepPoints)
	}
	for _, p := range points {
		if p.N1 < 1 || p.N2 < 1 || p.N1 > sw.N1 || p.N2 > sw.N2 {
			return badRequest("sweep point %dx%d outside the %dx%d lattice", p.N1, p.N2, sw.N1, sw.N2)
		}
	}
	if req.Weights != nil {
		if len(req.Weights) != len(sw.Classes) {
			return badRequest("%d weights for %d classes", len(req.Weights), len(sw.Classes))
		}
		for i, wt := range req.Weights {
			if !finite(wt) {
				return badRequest("weight %d is not finite", i)
			}
		}
	}
	// Dispatch is decided per point: points the expansion answers
	// within tolerance never touch the lattice, and — as in the grid
	// engine — they do not inflate the fill, which runs at the maximum
	// dimensions of the exact-routed points only.
	var asym []*core.Result
	entrySw := sw
	if opt != nil {
		asym = make([]*core.Result, len(points))
		emax1, emax2 := 0, 0
		for i, p := range points {
			sub := core.Switch{N1: p.N1, N2: p.N2, Classes: sw.Classes}
			res, ok, err := s.tryAsymptotic(sub, opt)
			if err != nil {
				return fmt.Errorf("sweep point %dx%d: %w", p.N1, p.N2, err)
			}
			if ok {
				asym[i] = res
				continue
			}
			emax1, emax2 = max(emax1, p.N1), max(emax2, p.N2)
		}
		if emax1 == 0 {
			// Every point went asymptotic: no lattice, no cache entry.
			resp := SweepResponse{N1: sw.N1, N2: sw.N2, Method: "asymptotic", Results: make([]SweepResult, len(points))}
			for i, p := range points {
				resp.Results[i] = sweepRow(p.N1, p.N2, asym[i], req.Weights)
			}
			s.writeJSON(w, http.StatusOK, resp)
			return nil
		}
		entrySw = core.Switch{N1: emax1, N2: emax2, Classes: sw.Classes}
	}
	if s.maybeForward(w, r, body, cacheKey(alg, entrySw)) {
		return nil
	}
	e, cached, err := s.withEntry(r, alg, entrySw)
	if err != nil {
		return err
	}
	defer s.cache.release(e)
	if err := e.lock(r.Context()); err != nil {
		return overloaded(err)
	}
	defer e.unlock()
	resp := SweepResponse{N1: sw.N1, N2: sw.N2, Cached: cached, Results: make([]SweepResult, len(points))}
	resp.Method = e.result().Method
	for i, p := range points {
		if asym != nil && asym[i] != nil {
			resp.Results[i] = sweepRow(p.N1, p.N2, asym[i], req.Weights)
			continue
		}
		row := sweepRow(p.N1, p.N2, e.resultAt(p.N1, p.N2), req.Weights)
		if opt != nil {
			row.Tier = core.TierExact
		}
		resp.Results[i] = row
	}
	s.writeJSON(w, http.StatusOK, resp)
	return nil
}

// sweepRow builds one sweep response row. The measure slices are
// copied out of the (entry-owned, memoized) Result so the row stays
// valid after the entry is unlocked and released. (Asymptotic results
// own their slices, but copying unconditionally keeps the escape rule
// simple.)
func sweepRow(n1, n2 int, res *core.Result, weights []float64) SweepResult {
	sr := SweepResult{
		N1:          n1,
		N2:          n2,
		Tier:        res.Tier,
		Blocking:    copyFloats(res.Blocking),
		Concurrency: copyFloats(res.Concurrency),
	}
	if res.ErrorBound != nil {
		sr.ErrorBound = copyFloats(res.ErrorBound)
	}
	if weights != nil {
		wv := res.Revenue(weights)
		sr.W = &wv
	}
	return sr
}

// withEntry acquires a solver slot and resolves the cache entry for
// the operating point. The slot is released before returning: the
// semaphore bounds concurrent lattice fills (the CPU-heavy part),
// while entry reads are serialized per entry by the entry lock.
func (s *Server) withEntry(r *http.Request, alg string, sw core.Switch) (*solverEntry, bool, error) {
	release, err := s.acquire(r.Context())
	if err != nil {
		return nil, false, overloaded(err)
	}
	defer release()
	e, cached, err := s.cache.get(r.Context(), alg, sw)
	if err != nil {
		var api *apiError
		if errors.As(err, &api) {
			return nil, false, err
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, false, overloaded(err)
		}
		return nil, false, &apiError{code: http.StatusUnprocessableEntity, msg: err.Error()}
	}
	return e, cached, nil
}

// overloaded maps context expiry (semaphore or entry-lock wait) onto
// 503 so load balancers retry elsewhere.
func overloaded(err error) error {
	return &apiError{code: http.StatusServiceUnavailable, msg: fmt.Sprintf("overloaded: %v", err)}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) error {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	return nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) error {
	s.writeJSON(w, http.StatusOK, s.metricsSnapshot())
	return nil
}
