package server

import (
	"bytes"
	"container/list"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"xbar/internal/scenario"
)

// scenarioFlight is one in-progress scenario evaluation that concurrent
// identical requests attach to instead of evaluating their own copy.
type scenarioFlight struct {
	done chan struct{} // closed once res and err are final
	res  *scenario.Result
	err  error
}

// scenarioItem is the LRU bookkeeping for one cached result.
type scenarioItem struct {
	key string
	res *scenario.Result
}

// scenarioCache is the LRU of evaluated scenario results with
// single-flight deduplication. It is the simple cousin of solverCache:
// a cached *scenario.Result is immutable and never recycled, so there
// is no reference counting, no entry lock and no free pool — hits hand
// out the shared pointer and the response path only reads it.
type scenarioCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List               // front = most recently used
	items   map[string]*list.Element // key -> element of ll
	flights map[string]*scenarioFlight
	metrics *Metrics
}

func newScenarioCache(maxEntries int, m *Metrics) *scenarioCache {
	return &scenarioCache{
		max:     maxEntries,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		flights: make(map[string]*scenarioFlight),
		metrics: m,
	}
}

// get returns the full result for key, running fill on a miss.
// Concurrent identical requests share one fill; errors are shared with
// the flight's waiters but never cached. cached reports whether the
// result came from the cache or a shared in-flight evaluation.
func (c *scenarioCache) get(ctx context.Context, key string, fill func() (*scenario.Result, error)) (res *scenario.Result, cached bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		res := el.Value.(*scenarioItem).res
		c.mu.Unlock()
		c.metrics.scenarioHits.Add(1)
		return res, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		c.metrics.scenarioShared.Add(1)
		select {
		case <-f.done:
			return f.res, true, f.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	f := &scenarioFlight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()
	c.metrics.scenarioMisses.Add(1)

	res, err = fill()

	c.mu.Lock()
	delete(c.flights, key)
	f.res, f.err = res, err
	if err == nil {
		c.items[key] = c.ll.PushFront(&scenarioItem{key: key, res: res})
		for c.ll.Len() > c.max {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*scenarioItem).key)
			c.metrics.scenarioEvictions.Add(1)
		}
	}
	c.mu.Unlock()
	close(f.done)
	return res, false, err
}

// len reports the number of cached results (not counting in-flight
// evaluations).
func (c *scenarioCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// scenarioLimits derives the scenario validation limits from the server
// configuration: the dimension and class caps follow the ones the
// /v1/blocking family enforces, everything else takes the scenario
// package defaults.
func (c Config) scenarioLimits() scenario.Limits {
	return scenario.Limits{MaxDim: c.MaxDim, MaxClasses: c.MaxClasses}
}

// ScenarioMeasure is one measure in a POST /v1/scenario reply.
// HalfWidth is the 95% confidence half-width of simulation estimates;
// analytical measures carry none and omit the field.
type ScenarioMeasure struct {
	Name      string  `json:"name"`
	Value     float64 `json:"value"`
	HalfWidth float64 `json:"half_width,omitempty"`
}

// ScenarioResponse is the POST /v1/scenario reply. Measures are in the
// request's measure-filter order when a filter was given, otherwise in
// the discipline's documented order. Omitted lists measures whose value
// is not finite for this scenario (JSON cannot carry NaN or ±Inf); a
// name appears in exactly one of the two lists.
type ScenarioResponse struct {
	Discipline string            `json:"discipline"`
	Cached     bool              `json:"cached"`
	Measures   []ScenarioMeasure `json:"measures"`
	Omitted    []string          `json:"omitted,omitempty"`
}

// scenarioErrorDoc is the 400 body for spec validation failures:
// the standard error string plus the per-field diagnostics.
type scenarioErrorDoc struct {
	Error  string                `json:"error"`
	Fields []scenario.FieldError `json:"fields"`
}

// scenarioError maps the scenario package's error taxonomy onto the
// HTTP contract: malformed specs are 400 (with indexed field errors in
// the body), well-formed but oversized specs are 413, and unknown
// disciplines or semantically unevaluable scenarios are 422. Anything
// else propagates as a 500. A nil return means the response has been
// written.
func (s *Server) scenarioError(w http.ResponseWriter, err error) error {
	var inv *scenario.InvalidError
	var le *scenario.LimitError
	var ud *scenario.UnknownDisciplineError
	var ee *scenario.EvalError
	switch {
	case errors.As(err, &inv):
		s.writeJSON(w, http.StatusBadRequest, scenarioErrorDoc{Error: inv.Error(), Fields: inv.Fields})
		return nil
	case errors.As(err, &le):
		return &apiError{code: http.StatusRequestEntityTooLarge, msg: le.Error()}
	case errors.As(err, &ud):
		return unprocessable("%v", ud)
	case errors.As(err, &ee):
		return unprocessable("%v", ee)
	}
	return err
}

func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) error {
	body, err := s.readBody(w, r)
	if err != nil {
		return err
	}
	spec, err := scenario.Decode(bytes.NewReader(body))
	if err != nil {
		return badRequest("invalid JSON: %v", err)
	}
	if err := spec.Validate(s.cfg.scenarioLimits()); err != nil {
		return s.scenarioError(w, err)
	}
	if s.maybeForward(w, r, body, spec.Key()) {
		return nil
	}

	// The cache stores one full measure set per canonical key (the key
	// excludes the measure filter), so requests differing only in their
	// filter share an entry; the filter applies on the way out.
	full, cached, err := s.scCache.get(r.Context(), spec.Key(), func() (*scenario.Result, error) {
		release, err := s.acquire(r.Context())
		if err != nil {
			return nil, overloaded(err)
		}
		defer release()
		fullSpec := *spec
		fullSpec.Measures = nil
		return s.scenario.Evaluate(&fullSpec)
	})
	if err != nil {
		var api *apiError
		if errors.As(err, &api) {
			return err
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return overloaded(err)
		}
		return s.scenarioError(w, err)
	}

	resp := ScenarioResponse{Discipline: full.Discipline, Cached: cached, Measures: []ScenarioMeasure{}}
	add := func(m scenario.Measure) {
		if !finite(m.Value) || !finite(m.HalfWidth) {
			resp.Omitted = append(resp.Omitted, m.Name)
			return
		}
		resp.Measures = append(resp.Measures, ScenarioMeasure{Name: m.Name, Value: m.Value, HalfWidth: m.HalfWidth})
	}
	if len(spec.Measures) == 0 {
		for _, m := range full.Measures {
			add(m)
		}
	} else {
		var fields []scenario.FieldError
		for i, name := range spec.Measures {
			m, ok := full.Measure(name)
			if !ok {
				fields = append(fields, scenario.FieldError{
					Field: fmt.Sprintf("measures[%d]", i),
					Msg:   fmt.Sprintf("discipline %q has no measure %q", full.Discipline, name),
				})
				continue
			}
			add(m)
		}
		if len(fields) > 0 {
			s.writeJSON(w, http.StatusBadRequest, scenarioErrorDoc{Error: "unknown measures", Fields: fields})
			return nil
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
	return nil
}
