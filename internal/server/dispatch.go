package server

import (
	"fmt"
	"net/http"

	"xbar/internal/core"
	"xbar/internal/floats"
	"xbar/internal/revenue"
)

// DispatchSpec carries the tier-selection fields every /v1 solve
// endpoint accepts. Absent (empty) dispatch keeps the pre-dispatch
// contract: exact solves only, dimensions capped at MaxDim with a 400
// — existing clients see identical behavior. "exact", "auto" and
// "asymptotic" opt into the dispatch layer (core.SolveAuto
// semantics); tolerance bounds the per-class relative error an
// asymptotic answer may carry under "auto" (0 means the
// core.DefaultTolerance) and is rejected without a policy.
type DispatchSpec struct {
	Dispatch  string  `json:"dispatch,omitempty"`
	Tolerance float64 `json:"tolerance,omitempty"`
}

// parseDispatch validates the spec. A nil return with nil error means
// dispatch is off (the legacy exact path).
func (s *Server) parseDispatch(d DispatchSpec) (*core.DispatchOptions, error) {
	if d.Dispatch == "" {
		if !floats.Zero(d.Tolerance) {
			return nil, badRequest("tolerance %v without a dispatch policy", d.Tolerance)
		}
		return nil, nil
	}
	pol, err := core.ParseDispatch(d.Dispatch)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	if !finite(d.Tolerance) || d.Tolerance < 0 {
		return nil, badRequest("tolerance %v, want a finite value >= 0", d.Tolerance)
	}
	return &core.DispatchOptions{Policy: pol, Tolerance: d.Tolerance, Fill: s.cfg.fillOptions()}, nil
}

// unprocessable builds a 422: the request is well-formed but the
// model cannot be served as asked.
func unprocessable(format string, args ...any) error {
	return &apiError{code: http.StatusUnprocessableEntity, msg: fmt.Sprintf(format, args...)}
}

// checkDims enforces the dimension caps under the dispatch policy:
// MaxDim without dispatch (400 over it, the legacy contract),
// MaxAsymDim with a non-exact policy, and the 422 contract for
// asymptotic-only sizes requested with dispatch=exact.
func (s *Server) checkDims(n1, n2 int, opt *core.DispatchOptions) error {
	if n1 <= s.cfg.MaxDim && n2 <= s.cfg.MaxDim {
		return nil
	}
	switch {
	case opt == nil:
		return badRequest("switch dimensions %dx%d exceed the server limit %d", n1, n2, s.cfg.MaxDim)
	case n1 > s.cfg.MaxAsymDim || n2 > s.cfg.MaxAsymDim:
		return badRequest("switch dimensions %dx%d exceed the server limit %d", n1, n2, s.cfg.MaxAsymDim)
	case opt.Policy == core.DispatchExact:
		return unprocessable("switch dimensions %dx%d are asymptotic-only on this server (exact limit %d), but dispatch is exact",
			n1, n2, s.cfg.MaxDim)
	}
	return nil
}

// effectiveTolerance mirrors the core dispatch default for messages.
func effectiveTolerance(opt *core.DispatchOptions) float64 {
	if opt.Tolerance <= 0 {
		return core.DefaultTolerance
	}
	return opt.Tolerance
}

// tryAsymptotic runs the dispatch decision for one model. It returns
// (res, true, nil) when the asymptotic tier answered, (nil, false,
// nil) when the exact path should run, and an error when neither can
// serve the request: a forced-asymptotic failure, or an auto fallback
// at a size the exact tier is not allowed to fill (both 422).
func (s *Server) tryAsymptotic(sw core.Switch, opt *core.DispatchOptions) (*core.Result, bool, error) {
	if opt == nil {
		return nil, false, nil
	}
	res, ok, err := core.TryAsymptotic(sw, *opt)
	if err != nil {
		return nil, false, unprocessable("asymptotic tier: %v", err)
	}
	if ok {
		return res, true, nil
	}
	if sw.N1 > s.cfg.MaxDim || sw.N2 > s.cfg.MaxDim {
		return nil, false, unprocessable(
			"switch size %dx%d needs the asymptotic tier, but its error bound exceeds the tolerance %g; raise tolerance or force dispatch=asymptotic",
			sw.N1, sw.N2, effectiveTolerance(opt))
	}
	return nil, false, nil
}

// asymRevenue builds the /v1/revenue reply on the asymptotic tier:
// revenue.AsymAnalysis in place of the lattice-backed Analysis, O(R)
// solves per operating point.
func asymRevenue(req RevenueRequest, sw core.Switch, step float64) (RevenueResponse, error) {
	an, err := revenue.NewAsymptotic(sw, req.Weights)
	if err != nil {
		return RevenueResponse{}, unprocessable("asymptotic tier: %v", err)
	}
	resp := RevenueResponse{N1: sw.N1, N2: sw.N2, W: an.W(), Tier: core.TierAsymptotic}
	for i, c := range sw.Classes {
		shadow, err := an.ShadowCost(i)
		if err != nil {
			return RevenueResponse{}, unprocessable("asymptotic tier: %v", err)
		}
		grad, err := an.GradientRhoClosed(i)
		if err != nil {
			return RevenueResponse{}, unprocessable("asymptotic tier: %v", err)
		}
		cr := ClassRevenue{
			Name:          req.Classes[i].Name,
			Weight:        req.Weights[i],
			ShadowCost:    shadow,
			Profitable:    req.Weights[i] > shadow,
			GradRhoClosed: grad,
			ErrorBound:    an.Bound(i),
		}
		if req.Gradients && !c.IsPoisson() && sw.MinN() >= 2 {
			g, err := an.GradientBetaMu(i, step)
			if err != nil {
				return RevenueResponse{}, unprocessable("asymptotic tier: %v", err)
			}
			cr.GradBetaMu = &g
		}
		resp.Classes = append(resp.Classes, cr)
	}
	return resp, nil
}
