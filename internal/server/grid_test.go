package server

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"xbar/internal/core"
)

// TestGridEndpoint drives /v1/grid over a batch engineered to exercise
// every sharing tier — the base point, a size variant, a canonical
// mu-scaled twin, and a genuinely distinct model — and checks every
// point bit-identical to a fresh core.Solve of its materialized
// switch.
func TestGridEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	alpha2, mu2 := 0.0048, 2.0
	req := GridRequest{
		SwitchSpec: paperSpec(16),
		Points: []GridPoint{
			{}, // the base switch itself
			// Aggregate units re-normalize against the point's own size:
			// per-route alpha .0024/8 = .0003, which coincides bit-exactly
			// with point 3's .0048/16 — they share one 16x16 fill.
			{N1: 8, N2: 8},
			// Power-of-two mu scaling: alpha/mu is bit-identical, so
			// this rides the base model's fill.
			{Classes: []GridClassDelta{{Class: 0, Alpha: &alpha2, Mu: &mu2}}},
			// Alpha bump without the mu scale: distinct from the base,
			// but the same per-route model as point 1.
			{Classes: []GridClassDelta{{Class: 0, Alpha: &alpha2}}},
		},
		Weights: []float64{1},
	}
	var resp GridResponse
	if code := postJSON(t, ts, "/v1/grid", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Points != 4 || resp.Models != 2 {
		t.Fatalf("points %d models %d, want 4 points over 2 models", resp.Points, resp.Models)
	}
	if resp.Cached != 0 {
		t.Errorf("cold request reports %d cached models", resp.Cached)
	}
	want := []core.Switch{
		paperSwitch(16),
		paperSwitch(8),
		core.NewSwitch(16, 16, core.AggregateClass{Name: "smooth", A: 1, AlphaTilde: 0.0048, Mu: 2}),
		core.NewSwitch(16, 16, core.AggregateClass{Name: "smooth", A: 1, AlphaTilde: 0.0048, Mu: 1}),
	}
	for i, sw := range want {
		direct, err := core.Solve(sw)
		if err != nil {
			t.Fatal(err)
		}
		pt := resp.Results[i]
		if pt.N1 != sw.N1 || pt.N2 != sw.N2 {
			t.Errorf("point %d: dims %dx%d, want %dx%d", i, pt.N1, pt.N2, sw.N1, sw.N2)
		}
		for r := range sw.Classes {
			if pt.Blocking[r] != direct.Blocking[r] {
				t.Errorf("point %d class %d blocking: %x != %x", i, r, pt.Blocking[r], direct.Blocking[r])
			}
			if pt.Concurrency[r] != direct.Concurrency[r] {
				t.Errorf("point %d class %d concurrency: %x != %x", i, r, pt.Concurrency[r], direct.Concurrency[r])
			}
		}
		if pt.W == nil || *pt.W != direct.Revenue(req.Weights) {
			t.Errorf("point %d: W mismatch", i)
		}
		if resp.Method != direct.Method {
			t.Errorf("method %q, want %q", resp.Method, direct.Method)
		}
	}

	// A repeat of the same grid finds every model resident.
	var warm GridResponse
	if code := postJSON(t, ts, "/v1/grid", req, &warm); code != http.StatusOK {
		t.Fatalf("warm status %d", code)
	}
	if warm.Cached != warm.Models {
		t.Errorf("warm request: %d of %d models cached", warm.Cached, warm.Models)
	}
	for i := range resp.Results {
		if resp.Results[i].Blocking[0] != warm.Results[i].Blocking[0] {
			t.Errorf("point %d: warm read differs from cold", i)
		}
	}
}

// TestGridAlg2 checks the algorithm selector reaches the MVA solver,
// with route units so the size variant genuinely sub-reads the base
// model's lattice.
func TestGridAlg2(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := GridRequest{
		SwitchSpec: SwitchSpec{N1: 8, N2: 8, Units: "route",
			Classes: []ClassSpec{{A: 1, Alpha: 0.001, Mu: 1}}},
		Algorithm: "alg2",
		Points:    []GridPoint{{}, {N1: 4, N2: 4}},
	}
	var resp GridResponse
	if code := postJSON(t, ts, "/v1/grid", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Method != "algorithm2" || resp.Models != 1 {
		t.Fatalf("method %q, %d models, want algorithm2 over 1 model", resp.Method, resp.Models)
	}
	for i, n := range []int{8, 4} {
		direct, err := core.SolveMVA(core.Switch{N1: n, N2: n,
			Classes: []core.Class{{A: 1, Alpha: 0.001, Mu: 1}}})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Results[i].Blocking[0] != direct.Blocking[0] {
			t.Errorf("point %d: %x != %x", i, resp.Results[i].Blocking[0], direct.Blocking[0])
		}
	}
}

// TestGridAggregateRenormalization pins the delta semantics: deltas
// apply to the spec before unit conversion, so a point that changes
// only the dimensions of an aggregate-units switch re-normalizes the
// tilde loads against its own size, exactly like a standalone
// /v1/blocking request for the materialized spec.
func TestGridAggregateRenormalization(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := GridRequest{
		SwitchSpec: paperSpec(16),
		Points:     []GridPoint{{N1: 12, N2: 12}},
	}
	var resp GridResponse
	if code := postJSON(t, ts, "/v1/grid", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var direct BlockingResponse
	if code := postJSON(t, ts, "/v1/blocking", BlockingRequest{SwitchSpec: paperSpec(12)}, &direct); code != http.StatusOK {
		t.Fatalf("blocking status %d", code)
	}
	if resp.Results[0].Blocking[0] != direct.Classes[0].Blocking {
		t.Errorf("grid point %x != /v1/blocking %x", resp.Results[0].Blocking[0], direct.Classes[0].Blocking)
	}
	// 0.0024/12 != 0.0024/16: the size variant is a different per-route
	// model and must NOT have shared the base lattice.
	if resp.Models != 1 {
		t.Errorf("%d models for a single point", resp.Models)
	}
}

// TestGridValidation sweeps the endpoint's malformed-input matrix.
func TestGridValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxGridPoints: 2})
	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/grid", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(data)
	}
	base := `"n1":4,"n2":4,"classes":[{"a":1,"alpha":0.01,"mu":1}]`
	cases := []struct {
		name, body string
		want       int
		msg        string
	}{
		{"no points", `{` + base + `}`, http.StatusBadRequest, "no grid points"},
		{"points above cap", `{` + base + `,"points":[{},{},{}]}`, http.StatusBadRequest, "server limit 2"},
		{"class index out of range", `{` + base + `,"points":[{"classes":[{"class":3}]}]}`, http.StatusBadRequest, "point 0"},
		{"negative class index", `{` + base + `,"points":[{},{"classes":[{"class":-1}]}]}`, http.StatusBadRequest, "point 1"},
		{"bad point dims", `{` + base + `,"points":[{"n1":-2}]}`, http.StatusBadRequest, "point 0"},
		{"weights count", `{` + base + `,"points":[{}],"weights":[1,2]}`, http.StatusBadRequest, "weights"},
		{"bad algorithm", `{` + base + `,"algorithm":"alg3","points":[{}]}`, http.StatusBadRequest, ""},
		{"unknown field", `{` + base + `,"points":[{"bogus":1}]}`, http.StatusBadRequest, ""},
		{"infeasible delta", `{` + base + `,"points":[{"classes":[{"class":0,"mu":0}]}]}`, http.StatusUnprocessableEntity, "point 0"},
	}
	for _, tc := range cases {
		code, body := post(tc.body)
		if code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, code, tc.want, body)
		}
		if tc.msg != "" && !strings.Contains(body, tc.msg) {
			t.Errorf("%s: body %q does not mention %q", tc.name, body, tc.msg)
		}
	}
}

// TestRowsCopyMeasures pins the response-row copy discipline: grid and
// sweep rows are serialized after their cache entry is unlocked and
// released, while the sweep layers memoize ResultAt reads, so a row
// holding views into the Result would alias a pooled entry's lattice
// memo past its lifecycle. The rows must carry copies.
func TestRowsCopyMeasures(t *testing.T) {
	res, err := core.Solve(paperSwitch(4))
	if err != nil {
		t.Fatal(err)
	}
	weights := []float64{1}
	gr := gridRow(4, 4, res, weights)
	sr := sweepRow(4, 4, res, weights)
	wantB, wantC := gr.Blocking[0], gr.Concurrency[0]
	res.Blocking[0] = -1
	res.Concurrency[0] = -1
	if gr.Blocking[0] != wantB || gr.Concurrency[0] != wantC {
		t.Errorf("grid row aliases the Result's measure slices")
	}
	if sr.Blocking[0] != wantB || sr.Concurrency[0] != wantC {
		t.Errorf("sweep row aliases the Result's measure slices")
	}
	if gr.W == nil || sr.W == nil {
		t.Fatalf("weighted rows missing W")
	}
}
