package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"xbar/internal/core"
	"xbar/internal/revenue"
)

// newTestServer builds a Server with test-friendly limits and an
// httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON posts body to path and decodes the response into out,
// returning the status code.
func postJSON(t *testing.T, ts *httptest.Server, path string, body, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %s response %q: %v", path, data, err)
		}
	}
	return resp.StatusCode
}

// paperSpec is the paper's Figure 1 Poisson operating point at 16x16:
// one class, a = 1, alpha~ = .0024, mu = 1.
func paperSpec(n int) SwitchSpec {
	return SwitchSpec{
		N1: n, N2: n,
		Classes: []ClassSpec{{Name: "smooth", A: 1, Alpha: 0.0024, Mu: 1}},
	}
}

func paperSwitch(n int) core.Switch {
	return core.NewSwitch(n, n, core.AggregateClass{Name: "smooth", A: 1, AlphaTilde: 0.0024, Mu: 1})
}

// figure1Golden reads the committed results/figure1.csv blocking value
// for size n from the beta~=0 column.
func figure1Golden(t *testing.T, n int) float64 {
	t.Helper()
	data, err := os.ReadFile("../../results/figure1.csv")
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n")[1:] {
		fields := strings.Split(strings.TrimSpace(line), ",")
		if len(fields) < 2 || fields[0] != strconv.Itoa(n) {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	t.Fatalf("no N=%d row in results/figure1.csv", n)
	return 0
}

// TestBlockingGolden is the acceptance gate: /v1/blocking must serve
// the committed results/figure1.csv value to 1e-9 and be bit-identical
// to a direct core.Solve of the same switch.
func TestBlockingGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp BlockingResponse
	if code := postJSON(t, ts, "/v1/blocking", BlockingRequest{SwitchSpec: paperSpec(16)}, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	want := figure1Golden(t, 16)
	if got := resp.Classes[0].Blocking; math.Abs(got-want) > 1e-9 {
		t.Errorf("blocking = %v, want %v from results/figure1.csv (|diff| %g)", got, want, math.Abs(got-want))
	}
	direct, err := core.Solve(paperSwitch(16))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Classes[0].Blocking != direct.Blocking[0] {
		t.Errorf("blocking = %x, core.Solve = %x; JSON round-trip must be bit-identical",
			resp.Classes[0].Blocking, direct.Blocking[0])
	}
	if resp.Classes[0].Concurrency != direct.Concurrency[0] {
		t.Errorf("concurrency = %x, core.Solve = %x", resp.Classes[0].Concurrency, direct.Concurrency[0])
	}
	if resp.LogG != direct.LogG {
		t.Errorf("log_g = %x, core.Solve = %x", resp.LogG, direct.LogG)
	}
	if resp.Method != "algorithm1" {
		t.Errorf("method = %q", resp.Method)
	}
	if resp.Cached {
		t.Error("first solve reported cached")
	}

	// Same request again: served from cache, identical numbers.
	var again BlockingResponse
	if code := postJSON(t, ts, "/v1/blocking", BlockingRequest{SwitchSpec: paperSpec(16)}, &again); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !again.Cached {
		t.Error("second solve not served from cache")
	}
	if again.Classes[0].Blocking != resp.Classes[0].Blocking {
		t.Error("cached read disagrees with the fill")
	}
}

// TestBlockingAlg2 pins the Algorithm 2 path and the route-units
// spelling of the same model.
func TestBlockingAlg2(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := paperSpec(12)
	var a1, a2 BlockingResponse
	if code := postJSON(t, ts, "/v1/blocking", BlockingRequest{SwitchSpec: spec}, &a1); code != http.StatusOK {
		t.Fatalf("alg1 status %d", code)
	}
	if code := postJSON(t, ts, "/v1/blocking", BlockingRequest{SwitchSpec: spec, Algorithm: "alg2"}, &a2); code != http.StatusOK {
		t.Fatalf("alg2 status %d", code)
	}
	if a2.Method != "algorithm2" {
		t.Errorf("method = %q", a2.Method)
	}
	if math.Abs(a1.Classes[0].Blocking-a2.Classes[0].Blocking) > 1e-12 {
		t.Errorf("alg1 %v vs alg2 %v", a1.Classes[0].Blocking, a2.Classes[0].Blocking)
	}

	perRoute := paperSwitch(12).Classes[0]
	routeSpec := SwitchSpec{N1: 12, N2: 12, Units: "route", Classes: []ClassSpec{
		{Name: "smooth", A: 1, Alpha: perRoute.Alpha, Mu: perRoute.Mu},
	}}
	var ar BlockingResponse
	if code := postJSON(t, ts, "/v1/blocking", BlockingRequest{SwitchSpec: routeSpec}, &ar); code != http.StatusOK {
		t.Fatalf("route-units status %d", code)
	}
	if ar.Classes[0].Blocking != a1.Classes[0].Blocking {
		t.Error("route units disagree with aggregate units for the same per-route model")
	}
	if !ar.Cached {
		t.Error("identical per-route model missed the cache: canonicalization broken")
	}
}

// TestConcurrentIdenticalRequests is the single-flight guarantee
// under -race: N concurrent identical requests share exactly one
// lattice fill.
func TestConcurrentIdenticalRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const n = 32
	spec := paperSpec(96) // big enough that the fill takes a moment
	var wg sync.WaitGroup
	errs := make([]error, n)
	blocking := make([]float64, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			buf, _ := json.Marshal(BlockingRequest{SwitchSpec: spec})
			resp, err := http.Post(ts.URL+"/v1/blocking", "application/json", bytes.NewReader(buf))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			var br BlockingResponse
			if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
				errs[i] = err
				return
			}
			blocking[i] = br.Classes[0].Blocking
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if blocking[i] != blocking[0] {
			t.Fatalf("request %d read %x, request 0 read %x", i, blocking[i], blocking[0])
		}
	}
	snap := s.Metrics().Snapshot()
	if snap.Cache.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 (single flight)", snap.Cache.Misses)
	}
	if got := snap.Cache.Hits + snap.Cache.SharedInFlight; got != n-1 {
		t.Errorf("hits + shared = %d, want %d", got, n-1)
	}
}

// TestConcurrentDistinctRequests drives different operating points
// concurrently (race coverage for the LRU + flights maps) and checks
// each against a direct solve.
func TestConcurrentDistinctRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sizes := []int{4, 8, 12, 16, 20, 24, 28, 32}
	var wg sync.WaitGroup
	errs := make([]error, len(sizes))
	for i, n := range sizes {
		wg.Add(1)
		go func(i, n int) {
			defer wg.Done()
			var br BlockingResponse
			buf, _ := json.Marshal(BlockingRequest{SwitchSpec: paperSpec(n)})
			resp, err := http.Post(ts.URL+"/v1/blocking", "application/json", bytes.NewReader(buf))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
				errs[i] = err
				return
			}
			direct, err := core.Solve(paperSwitch(n))
			if err != nil {
				errs[i] = err
				return
			}
			if br.Classes[0].Blocking != direct.Blocking[0] {
				errs[i] = fmt.Errorf("N=%d: %x != %x", n, br.Classes[0].Blocking, direct.Blocking[0])
			}
		}(i, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestCacheEvictionAndRecycling squeezes distinct operating points
// through a 2-entry cache and checks the LRU evicts and the free pool
// recycles lattices.
func TestCacheEvictionAndRecycling(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheSize: 2})
	for round := 0; round < 2; round++ {
		for _, n := range []int{4, 6, 8, 10} {
			var br BlockingResponse
			if code := postJSON(t, ts, "/v1/blocking", BlockingRequest{SwitchSpec: paperSpec(n)}, &br); code != http.StatusOK {
				t.Fatalf("N=%d status %d", n, code)
			}
			direct, err := core.Solve(paperSwitch(n))
			if err != nil {
				t.Fatal(err)
			}
			if br.Classes[0].Blocking != direct.Blocking[0] {
				t.Fatalf("N=%d disagrees with direct solve after eviction churn", n)
			}
		}
	}
	snap := s.Metrics().Snapshot()
	if snap.Cache.Evictions == 0 {
		t.Error("no evictions through a 2-entry cache")
	}
	if snap.Cache.SolversRecycled == 0 {
		t.Error("no solver recycling despite evictions")
	}
	if got := s.cache.len(); got > 2 {
		t.Errorf("cache holds %d entries, cap 2", got)
	}
}

// TestRevenueEndpoint checks /v1/revenue against the revenue package
// driven directly.
func TestRevenueEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := SwitchSpec{N1: 8, N2: 8, Classes: []ClassSpec{
		{Name: "narrow", A: 1, Alpha: 0.0024, Mu: 1},
		{Name: "wide", A: 2, Alpha: 0.0012, Beta: 0.0004, Mu: 0.5},
	}}
	weights := []float64{1, 0.2}
	var resp RevenueResponse
	code := postJSON(t, ts, "/v1/revenue", RevenueRequest{SwitchSpec: spec, Weights: weights, Gradients: true}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	sw := core.NewSwitch(8, 8,
		core.AggregateClass{Name: "narrow", A: 1, AlphaTilde: 0.0024, Mu: 1},
		core.AggregateClass{Name: "wide", A: 2, AlphaTilde: 0.0012, BetaTilde: 0.0004, Mu: 0.5})
	an, err := revenue.New(sw, weights)
	if err != nil {
		t.Fatal(err)
	}
	if resp.W != an.W() {
		t.Errorf("W = %x, want %x", resp.W, an.W())
	}
	for i := range weights {
		if resp.Classes[i].ShadowCost != an.ShadowCost(i) {
			t.Errorf("shadow_cost[%d] = %x, want %x", i, resp.Classes[i].ShadowCost, an.ShadowCost(i))
		}
		if resp.Classes[i].Profitable != an.Profitable(i) {
			t.Errorf("profitable[%d] = %v", i, resp.Classes[i].Profitable)
		}
		if resp.Classes[i].GradRhoClosed != an.GradientRhoClosed(i) {
			t.Errorf("grad_rho_closed[%d] mismatch", i)
		}
	}
	if resp.Classes[0].GradBetaMu != nil {
		t.Error("Poisson class got a beta gradient")
	}
	if resp.Classes[1].GradBetaMu == nil {
		t.Error("bursty class missing its beta gradient")
	} else if want := an.GradientBetaMu(1, 1e-4); math.Abs(*resp.Classes[1].GradBetaMu-want) > math.Abs(want)*1e-9+1e-12 {
		t.Errorf("grad_beta_mu = %v, want %v", *resp.Classes[1].GradBetaMu, want)
	}

	if code := postJSON(t, ts, "/v1/revenue", RevenueRequest{SwitchSpec: spec, Weights: []float64{1}}, nil); code != http.StatusBadRequest {
		t.Errorf("mismatched weights: status %d, want 400", code)
	}
}

// TestAdmissionEndpoint covers both policies.
func TestAdmissionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := SwitchSpec{N1: 8, N2: 8, Classes: []ClassSpec{
		{Name: "gold", A: 1, Alpha: 0.0024, Mu: 1},
		{Name: "bulk", A: 2, Alpha: 0.0012, Mu: 1},
	}}

	// Profitability: a weight far above any displacement accepts, a
	// (negative) weight below it rejects.
	var acc AdmissionResponse
	if code := postJSON(t, ts, "/v1/admission", AdmissionRequest{
		SwitchSpec: spec, Class: 0, Weights: []float64{100, 0.1},
	}, &acc); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !acc.Accept || acc.Policy != "profitability" || acc.ShadowCost == nil {
		t.Errorf("accept = %v policy = %q", acc.Accept, acc.Policy)
	}
	var rej AdmissionResponse
	if code := postJSON(t, ts, "/v1/admission", AdmissionRequest{
		SwitchSpec: spec, Class: 0, Weights: []float64{-100, 0.1},
	}, &rej); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if rej.Accept {
		t.Error("negative-revenue class accepted")
	}

	// Reservation: bulk is capped at occupancy 4; a state at the cap
	// rejects, an empty switch accepts, a full switch rejects even an
	// uncapped class.
	var ok AdmissionResponse
	if code := postJSON(t, ts, "/v1/admission", AdmissionRequest{
		SwitchSpec: spec, Class: 1, Policy: "reservation", Limits: []int{8, 4},
	}, &ok); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !ok.Accept || ok.Occupancy == nil || *ok.Occupancy != 0 {
		t.Errorf("empty-switch reservation: %+v", ok)
	}
	var capped AdmissionResponse
	if code := postJSON(t, ts, "/v1/admission", AdmissionRequest{
		SwitchSpec: spec, Class: 1, Policy: "reservation", Limits: []int{8, 4}, State: []int{3, 1},
	}, &capped); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if capped.Accept {
		t.Error("bulk admitted past its reservation limit")
	}
	var full AdmissionResponse
	if code := postJSON(t, ts, "/v1/admission", AdmissionRequest{
		SwitchSpec: spec, Class: 0, Policy: "reservation", Limits: []int{8, 8}, State: []int{8, 0},
	}, &full); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if full.Accept {
		t.Error("admitted into a full switch")
	}

	if code := postJSON(t, ts, "/v1/admission", AdmissionRequest{
		SwitchSpec: spec, Class: 5, Weights: []float64{1, 1},
	}, nil); code != http.StatusBadRequest {
		t.Errorf("out-of-range class: status %d, want 400", code)
	}
	if code := postJSON(t, ts, "/v1/admission", AdmissionRequest{
		SwitchSpec: spec, Class: 0, Policy: "reservation", Limits: []int{8, 4}, State: []int{9, 0},
	}, nil); code != http.StatusBadRequest {
		t.Errorf("infeasible state: status %d, want 400", code)
	}
}

// TestSweepEndpoint checks the default diagonal sweep against fresh
// sub-size solves with the same per-route classes, plus explicit
// points and revenue weights.
func TestSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := SwitchSpec{N1: 10, N2: 14, Units: "route", Classes: []ClassSpec{
		{Name: "p", A: 1, Alpha: 0.01, Mu: 1},
		{Name: "peaky", A: 2, Alpha: 0.002, Beta: 0.0005, Mu: 0.5},
	}}
	classes := []core.Class{
		{Name: "p", A: 1, Alpha: 0.01, Mu: 1},
		{Name: "peaky", A: 2, Alpha: 0.002, Beta: 0.0005, Mu: 0.5},
	}
	var resp SweepResponse
	if code := postJSON(t, ts, "/v1/sweep", SweepRequest{SwitchSpec: spec}, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Results) != 10 {
		t.Fatalf("%d diagonal points, want 10", len(resp.Results))
	}
	for _, pt := range resp.Results {
		direct, err := core.Solve(core.Switch{N1: pt.N1, N2: pt.N2, Classes: classes})
		if err != nil {
			t.Fatal(err)
		}
		for r := range classes {
			if pt.Blocking[r] != direct.Blocking[r] {
				t.Errorf("point %dx%d class %d: %x != %x", pt.N1, pt.N2, r, pt.Blocking[r], direct.Blocking[r])
			}
		}
	}

	weights := []float64{1, 0.3}
	var wp SweepResponse
	req := SweepRequest{SwitchSpec: spec, Algorithm: "alg2",
		Points: []SweepPoint{{3, 7}, {10, 14}}, Weights: weights}
	if code := postJSON(t, ts, "/v1/sweep", req, &wp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if wp.Method != "algorithm2" || len(wp.Results) != 2 {
		t.Fatalf("method %q, %d results", wp.Method, len(wp.Results))
	}
	for _, pt := range wp.Results {
		direct, err := core.SolveMVA(core.Switch{N1: pt.N1, N2: pt.N2, Classes: classes})
		if err != nil {
			t.Fatal(err)
		}
		if pt.W == nil || *pt.W != direct.Revenue(weights) {
			t.Errorf("point %dx%d W mismatch", pt.N1, pt.N2)
		}
	}

	if code := postJSON(t, ts, "/v1/sweep", SweepRequest{SwitchSpec: spec,
		Points: []SweepPoint{{11, 1}}}, nil); code != http.StatusBadRequest {
		t.Errorf("out-of-lattice point: status %d, want 400", code)
	}
}

// TestValidationErrors sweeps the malformed-input matrix.
func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxDim: 64, MaxBodyBytes: 512, MaxSweepPoints: 3})
	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode
	}
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"bad json", "/v1/blocking", "{", http.StatusBadRequest},
		{"unknown field", "/v1/blocking", `{"n1":4,"n2":4,"classes":[{"a":1,"alpha":0.1,"mu":1}],"bogus":1}`, http.StatusBadRequest},
		{"trailing data", "/v1/blocking", `{"n1":4,"n2":4,"classes":[{"a":1,"alpha":0.1,"mu":1}]} {"extra":1}`, http.StatusBadRequest},
		{"nan alpha", "/v1/blocking", `{"n1":4,"n2":4,"classes":[{"a":1,"alpha":"NaN","mu":1}]}`, http.StatusBadRequest},
		{"zero dims", "/v1/blocking", `{"n1":0,"n2":4,"classes":[{"a":1,"alpha":0.1,"mu":1}]}`, http.StatusBadRequest},
		{"dim above cap", "/v1/blocking", `{"n1":65,"n2":4,"classes":[{"a":1,"alpha":0.1,"mu":1}]}`, http.StatusBadRequest},
		{"no classes", "/v1/blocking", `{"n1":4,"n2":4,"classes":[]}`, http.StatusBadRequest},
		{"bad units", "/v1/blocking", `{"n1":4,"n2":4,"units":"furlongs","classes":[{"a":1,"alpha":0.1,"mu":1}]}`, http.StatusBadRequest},
		{"bad algorithm", "/v1/blocking", `{"n1":4,"n2":4,"algorithm":"alg3","classes":[{"a":1,"alpha":0.1,"mu":1}]}`, http.StatusBadRequest},
		{"zero mu", "/v1/blocking", `{"n1":4,"n2":4,"classes":[{"a":1,"alpha":0.1,"mu":0}]}`, http.StatusUnprocessableEntity},
		{"pascal divergence", "/v1/blocking", `{"n1":4,"n2":4,"units":"route","classes":[{"a":1,"alpha":0.1,"beta":2,"mu":1}]}`, http.StatusUnprocessableEntity},
		{"sweep points above cap", "/v1/sweep", `{"n1":8,"n2":8,"classes":[{"a":1,"alpha":0.001,"mu":1}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if got := post(tc.path, tc.body); got != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, got, tc.want)
		}
	}

	// Body too large: 413 via MaxBytesReader.
	big := `{"n1":4,"n2":4,"classes":[{"a":1,"alpha":0.1,"mu":1,"name":"` + strings.Repeat("x", 600) + `"}]}`
	if got := post("/v1/blocking", big); got != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", got)
	}

	// Wrong methods 405, unknown path 404.
	resp, err := http.Get(ts.URL + "/v1/blocking")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/blocking: %d, want 405", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/nonsense")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v1/nonsense: %d, want 404", resp.StatusCode)
	}
}

// TestHealthzAndMetrics exercises the operational endpoints end to
// end, including the error counter and the latency histogram.
func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Errorf("healthz = %v", health)
	}

	if code := postJSON(t, ts, "/v1/blocking", BlockingRequest{SwitchSpec: paperSpec(8)}, nil); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	r2, err := http.Post(ts.URL+"/v1/blocking", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	b := snap.Endpoints["/v1/blocking"]
	if b.Requests != 2 || b.Errors != 1 {
		t.Errorf("blocking endpoint: %d requests %d errors, want 2 and 1", b.Requests, b.Errors)
	}
	h := b.Latency
	if total := h.Le100us + h.Le1ms + h.Le10ms + h.Le100ms + h.Le1s + h.Le10s + h.Over10s; total != 2 {
		t.Errorf("histogram holds %d observations, want 2", total)
	}
	if snap.Endpoints["/healthz"].Requests != 1 {
		t.Errorf("healthz requests = %d", snap.Endpoints["/healthz"].Requests)
	}
	if snap.Cache.Misses != 1 {
		t.Errorf("cache misses = %d", snap.Cache.Misses)
	}
}

// TestEntryLockTimeout pins the overload path: a request that cannot
// get the entry lock within its deadline turns into 503, not a hang.
func TestEntryLockTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{RequestTimeout: 100 * time.Millisecond})
	if code := postJSON(t, ts, "/v1/blocking", BlockingRequest{SwitchSpec: paperSpec(8)}, nil); code != http.StatusOK {
		t.Fatalf("priming status %d", code)
	}
	e, _, err := s.cache.get(context.Background(), alg1, paperSwitch(8))
	if err != nil {
		t.Fatal(err)
	}
	defer s.cache.release(e)
	if err := e.lock(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer e.unlock()
	if code := postJSON(t, ts, "/v1/blocking", BlockingRequest{SwitchSpec: paperSpec(8)}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("status %d with the entry locked, want 503", code)
	}
}

// TestLifecycle runs the daemon path over real TCP: Start on port 0,
// Run, healthz and a solve over the wire, pprof on the debug mux,
// then a context cancel must drain cleanly.
func TestLifecycle(t *testing.T) {
	s, err := New(Config{Addr: "127.0.0.1:0", DebugAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()

	base := "http://" + s.Addr()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", resp.StatusCode)
	}
	buf, _ := json.Marshal(BlockingRequest{SwitchSpec: paperSpec(8)})
	resp, err = http.Post(base+"/v1/blocking", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("blocking %d", resp.StatusCode)
	}

	dresp, err := http.Get("http://" + s.DebugAddr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline %d", dresp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not complete")
	}
}
