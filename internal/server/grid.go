package server

import (
	"errors"
	"fmt"
	"net/http"

	"xbar/internal/core"
	"xbar/internal/grid"
)

// GridClassDelta overrides selected parameters of one base class for
// one grid point. Nil fields keep the base value; the overrides are in
// the request's units (aggregate or route, per SwitchSpec.Units).
type GridClassDelta struct {
	Class int      `json:"class"`
	Alpha *float64 `json:"alpha,omitempty"`
	Beta  *float64 `json:"beta,omitempty"`
	Mu    *float64 `json:"mu,omitempty"`
}

// GridPoint is one point of a batched evaluation, described relative
// to the request's base switch: zero dimensions keep the base
// dimension, and Classes lists the parameters that moved. The empty
// GridPoint is the base switch itself.
type GridPoint struct {
	N1      int              `json:"n1,omitempty"`
	N2      int              `json:"n2,omitempty"`
	Classes []GridClassDelta `json:"classes,omitempty"`
}

// GridRequest is the POST /v1/grid body: a base switch plus per-point
// deltas — the wire form of a parameter grid (a figure's curve family,
// an optimizer's line search). Points that canonicalize to the same
// per-route model, or that differ only in dimensions, share one
// lattice fill through the solver cache. Weights, when present, adds
// the revenue W at every point.
type GridRequest struct {
	SwitchSpec
	DispatchSpec
	Algorithm string      `json:"algorithm,omitempty"`
	Points    []GridPoint `json:"points"`
	Weights   []float64   `json:"weights,omitempty"`
}

// GridResult is one point of the grid reply, in request point order.
// Blocking and Concurrency are in request class order. (No throughput
// here: points sharing a fill may differ in mu, and blocking,
// concurrency and W are the mu-invariant measures.) Tier is present
// when the request carried a dispatch policy — decided per point —
// and ErrorBound accompanies asymptotic points.
type GridResult struct {
	N1          int       `json:"n1"`
	N2          int       `json:"n2"`
	Tier        string    `json:"tier,omitempty"`
	Blocking    []float64 `json:"blocking"`
	Concurrency []float64 `json:"concurrency"`
	ErrorBound  []float64 `json:"error_bound,omitempty"`
	W           *float64  `json:"w,omitempty"`
}

// GridResponse is the POST /v1/grid reply. Models counts the distinct
// lattice fills the batch reduced to; Cached counts how many of those
// were already resident in (or in flight on) the solver cache;
// Asymptotic counts the points the saddle-point tier answered without
// any lattice.
type GridResponse struct {
	Method     string       `json:"method"`
	Points     int          `json:"points"`
	Models     int          `json:"models"`
	Cached     int          `json:"cached"`
	Asymptotic int          `json:"asymptotic,omitempty"`
	Results    []GridResult `json:"results"`
}

// applyGridPoint materializes one point's SwitchSpec. Deltas apply to
// the spec (pre-conversion), so aggregate-units loads are re-normalized
// against the point's own dimensions, exactly as if the client had
// sent the materialized spec to /v1/blocking.
func applyGridPoint(base SwitchSpec, p GridPoint) (SwitchSpec, error) {
	spec := base
	if p.N1 != 0 {
		spec.N1 = p.N1
	}
	if p.N2 != 0 {
		spec.N2 = p.N2
	}
	if len(p.Classes) > 0 {
		spec.Classes = append([]ClassSpec(nil), base.Classes...)
		for _, d := range p.Classes {
			if d.Class < 0 || d.Class >= len(spec.Classes) {
				return SwitchSpec{}, badRequest("class delta index %d out of range [0,%d)", d.Class, len(spec.Classes))
			}
			c := &spec.Classes[d.Class]
			if d.Alpha != nil {
				c.Alpha = *d.Alpha
			}
			if d.Beta != nil {
				c.Beta = *d.Beta
			}
			if d.Mu != nil {
				c.Mu = *d.Mu
			}
		}
	}
	return spec, nil
}

// pointError prefixes a client-facing error with the offending point's
// index, preserving its status code.
func pointError(i int, err error) error {
	var api *apiError
	if errors.As(err, &api) {
		return &apiError{code: api.code, msg: fmt.Sprintf("point %d: %s", i, api.msg)}
	}
	return err
}

// gridRow builds one grid response row. Like sweepRow, it copies the
// measure slices out of the entry-owned memoized Result: the rows are
// serialized after the entry has been unlocked and released, so views
// into the memo would escape the entry's lifecycle.
func gridRow(n1, n2 int, res *core.Result, weights []float64) GridResult {
	gr := GridResult{
		N1:          n1,
		N2:          n2,
		Tier:        res.Tier,
		Blocking:    copyFloats(res.Blocking),
		Concurrency: copyFloats(res.Concurrency),
	}
	if res.ErrorBound != nil {
		gr.ErrorBound = copyFloats(res.ErrorBound)
	}
	if weights != nil {
		wv := res.Revenue(weights)
		gr.W = &wv
	}
	return gr
}

// gridGroup is one distinct canonical class set of a grid request: all
// its points are read off one cache entry filled at the componentwise
// maximum dimensions.
type gridGroup struct {
	classes []core.Class
	n1, n2  int
	members []int // request point indices
}

func (s *Server) handleGrid(w http.ResponseWriter, r *http.Request) error {
	body, err := s.readBody(w, r)
	if err != nil {
		return err
	}
	var req GridRequest
	if err := decodeBytes(body, &req); err != nil {
		return err
	}
	alg, err := normalizeAlg(req.Algorithm)
	if err != nil {
		return err
	}
	if len(req.Points) == 0 {
		return badRequest("no grid points")
	}
	if len(req.Points) > s.cfg.MaxGridPoints {
		return badRequest("%d grid points exceed the server limit %d", len(req.Points), s.cfg.MaxGridPoints)
	}
	if req.Weights != nil {
		if len(req.Weights) != len(req.Classes) {
			return badRequest("%d weights for %d classes", len(req.Weights), len(req.Classes))
		}
		for i, wt := range req.Weights {
			if !finite(wt) {
				return badRequest("weight %d is not finite", i)
			}
		}
	}

	opt, err := s.parseDispatch(req.DispatchSpec)
	if err != nil {
		return err
	}

	// Materialize and validate every point, then group by canonical
	// class key: points differing only in dimensions (or in nothing the
	// solver reads) share one entry at the group maximum. Under a
	// dispatch policy the tier is decided per point first, and
	// asymptotic points join no group — one huge point cannot inflate
	// a group's fill dimensions (the grid.Engine rule).
	points := make([]core.Switch, len(req.Points))
	groups := make(map[string]*gridGroup)
	var order []string
	asymCount := 0
	resp := GridResponse{Points: len(req.Points), Results: make([]GridResult, len(req.Points))}
	for i, p := range req.Points {
		spec, err := applyGridPoint(req.SwitchSpec, p)
		if err != nil {
			return pointError(i, err)
		}
		sw, err := s.buildSwitchFor(spec, opt)
		if err != nil {
			return pointError(i, err)
		}
		points[i] = sw
		if opt != nil {
			res, ok, err := s.tryAsymptotic(sw, opt)
			if err != nil {
				return pointError(i, err)
			}
			if ok {
				resp.Results[i] = gridRow(sw.N1, sw.N2, res, req.Weights)
				asymCount++
				continue
			}
		}
		ck := grid.ClassKey(sw.Classes)
		g, ok := groups[ck]
		if !ok {
			g = &gridGroup{classes: sw.Classes}
			groups[ck] = g
			order = append(order, ck)
		}
		g.n1 = max(g.n1, sw.N1)
		g.n2 = max(g.n2, sw.N2)
		g.members = append(g.members, i)
	}
	resp.Models = len(order)
	resp.Asymptotic = asymCount
	if len(order) == 0 {
		resp.Method = "asymptotic"
	}
	// Forward the whole request only when every group entry lives on
	// one peer (maybeForward's all-same-owner rule); mixed ownership
	// computes locally — correct, just less fleet-wide dedup.
	if len(order) > 0 {
		keys := make([]string, len(order))
		for i, ck := range order {
			g := groups[ck]
			keys[i] = cacheKey(alg, core.Switch{N1: g.n1, N2: g.n2, Classes: g.classes})
		}
		if s.maybeForward(w, r, body, keys...) {
			return nil
		}
	}
	for _, ck := range order {
		g := groups[ck]
		groupSw := core.Switch{N1: g.n1, N2: g.n2, Classes: g.classes}
		e, cached, err := s.withEntry(r, alg, groupSw)
		if err != nil {
			return err
		}
		if cached {
			resp.Cached++
		}
		if err := e.lock(r.Context()); err != nil {
			s.cache.release(e)
			return overloaded(err)
		}
		resp.Method = e.result().Method
		for _, i := range g.members {
			row := gridRow(points[i].N1, points[i].N2, e.resultAt(points[i].N1, points[i].N2), req.Weights)
			if opt != nil {
				row.Tier = core.TierExact
			}
			resp.Results[i] = row
		}
		e.unlock()
		s.cache.release(e)
	}
	s.writeJSON(w, http.StatusOK, resp)
	return nil
}
