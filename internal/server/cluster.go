package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"xbar/internal/cluster"
)

// readBody reads one request body whole under the server's size cap.
// The forwarding layer needs the raw bytes (to proxy or replicate the
// request verbatim), so clustered handlers read first and decode from
// the buffer; the size- and strictness-contract is identical to the
// streaming decode path.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, &apiError{code: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)}
		}
		return nil, badRequest("reading body: %v", err)
	}
	return data, nil
}

// decodeBytes decodes an already-read JSON body with the server's
// strictness: unknown fields rejected, trailing data rejected.
func decodeBytes(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("invalid JSON: %v", err)
	}
	if dec.More() {
		return badRequest("trailing data after JSON body")
	}
	return nil
}

// maybeForward is the ownership check every cacheable POST handler
// runs after validation and before touching its cache: when every key
// the request resolves to is owned by one peer, the whole request is
// proxied there and the peer's response written verbatim (returning
// true — the response is complete). In every other case it returns
// false and the caller computes locally:
//
//   - single-node mode (no cluster) — the layer is disabled;
//   - this node owns the keys — it also feeds the hot tracker;
//   - mixed ownership across keys (multi-group /v1/grid) — local
//     compute is correct, it just deduplicates less;
//   - the request carries the forwarded or replicate marker — the loop
//     guard: proxied requests are served where they land, so a skewed
//     ring view costs one extra hop, never a cycle;
//   - the owner is down or erroring — counted as a failover, served
//     locally: a dead peer degrades to single-node behavior, never to
//     a client-facing error.
func (s *Server) maybeForward(w http.ResponseWriter, r *http.Request, body []byte, keys ...string) bool {
	c := s.cluster
	if c == nil || len(keys) == 0 {
		return false
	}
	if r.Header.Get(cluster.HeaderReplicate) != "" {
		// Cache-warming traffic: fill locally, response discarded by the
		// sender. It must not feed the hot tracker — replication feeding
		// back into replication would self-oscillate.
		return false
	}
	forwarded := r.Header.Get(cluster.HeaderForwarded) != ""
	if forwarded {
		c.Metrics().RecordForwardedServed()
	}
	owner := c.Owner(keys[0])
	for _, k := range keys[1:] {
		if c.Owner(k) != owner {
			owner = c.NodeID() // mixed ownership: serve locally
			break
		}
	}
	if forwarded || owner == c.NodeID() {
		for _, k := range keys {
			if c.IsLocal(k) {
				c.Touch(k, r.URL.Path, body)
			}
		}
		return false
	}
	res, err := c.Forward(r.Context(), owner, r.URL.Path, body)
	if err != nil {
		c.Metrics().RecordFailover()
		s.cfg.logf("cluster: forward %s to %s failed (%v); serving locally", r.URL.Path, owner, err)
		return false
	}
	if res.ContentType != "" {
		w.Header().Set("Content-Type", res.ContentType)
	}
	if res.ServedBy != "" {
		w.Header().Set(cluster.HeaderNode, res.ServedBy)
	}
	w.WriteHeader(res.Status)
	if _, err := w.Write(res.Body); err != nil {
		s.metrics.writeFailures.Add(1)
	}
	return true
}

// handleReadyz is the readiness probe, distinct from /healthz
// liveness: 200 only between ring initialization and the start of
// shutdown. A draining node is alive (healthz 200) but not ready
// (readyz 503), so balancers and peers stop routing to it before its
// listener closes.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) error {
	switch {
	case s.draining.Load():
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case !s.ready.Load():
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "starting"})
	default:
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
	return nil
}

// ClusterNodeStatus is one member's row in the GET /v1/cluster rollup.
type ClusterNodeStatus struct {
	NodeID    string    `json:"node_id"`
	Addr      string    `json:"addr"`
	Self      bool      `json:"self,omitempty"`
	Reachable bool      `json:"reachable"`
	Error     string    `json:"error,omitempty"`
	Metrics   *Snapshot `json:"metrics,omitempty"`
}

// ClusterFleet aggregates cache effectiveness across the reachable
// members: the fleet-wide hit rate is the number a load test reads to
// see the ring working (misses stay at one per distinct model no
// matter which node the client hits). Hits include shared in-flight
// waits — both avoided a fill.
type ClusterFleet struct {
	Nodes              int     `json:"nodes"`
	Reachable          int     `json:"reachable"`
	CacheHits          int64   `json:"cache_hits"`
	CacheMisses        int64   `json:"cache_misses"`
	CacheHitRate       float64 `json:"cache_hit_rate"`
	ScenarioCacheHits  int64   `json:"scenario_cache_hits"`
	ScenarioCacheMiss  int64   `json:"scenario_cache_misses"`
	Forwards           int64   `json:"forwards"`
	ForwardErrors      int64   `json:"forward_errors"`
	Failovers          int64   `json:"failovers"`
	ReplicationSent    int64   `json:"replication_sent"`
	ReplicationFailed  int64   `json:"replication_failed"`
	ReplicationDropped int64   `json:"replication_dropped"`
}

// ClusterStatusResponse is the GET /v1/cluster reply: one row per
// member (this node answers from its own counters, peers are scraped
// live over /metrics) and the fleet aggregate.
type ClusterStatusResponse struct {
	NodeID string              `json:"node_id"`
	Nodes  []ClusterNodeStatus `json:"nodes"`
	Fleet  ClusterFleet        `json:"fleet"`
}

// handleCluster serves the fleet rollup. Unreachable peers get an
// error row, never fail the rollup; 404 in single-node mode.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) error {
	c := s.cluster
	if c == nil {
		return &apiError{code: http.StatusNotFound, msg: "cluster disabled (single-node)"}
	}
	nodes := c.Nodes()
	rows := make([]ClusterNodeStatus, len(nodes))
	var wg sync.WaitGroup
	for i, id := range nodes {
		row := &rows[i]
		row.NodeID = id
		row.Addr = c.PeerURL(id)
		if id == c.NodeID() {
			snap := s.metricsSnapshot()
			row.Self, row.Reachable, row.Metrics = true, true, &snap
			continue
		}
		wg.Add(1)
		go func(row *ClusterNodeStatus, id string) {
			defer wg.Done()
			data, err := c.FetchJSON(r.Context(), id, "/metrics")
			if err != nil {
				row.Error = err.Error()
				return
			}
			var snap Snapshot
			if err := json.Unmarshal(data, &snap); err != nil {
				row.Error = fmt.Sprintf("decoding peer metrics: %v", err)
				return
			}
			row.Reachable = true
			row.Metrics = &snap
		}(row, id)
	}
	wg.Wait()
	resp := ClusterStatusResponse{NodeID: c.NodeID(), Nodes: rows}
	fleet := &resp.Fleet
	fleet.Nodes = len(nodes)
	for i := range rows {
		m := rows[i].Metrics
		if !rows[i].Reachable || m == nil {
			continue
		}
		fleet.Reachable++
		fleet.CacheHits += m.Cache.Hits + m.Cache.SharedInFlight
		fleet.CacheMisses += m.Cache.Misses
		fleet.ScenarioCacheHits += m.ScenarioCache.Hits + m.ScenarioCache.SharedInFlight
		fleet.ScenarioCacheMiss += m.ScenarioCache.Misses
		if cs := m.Cluster; cs != nil {
			fleet.Forwards += cs.Forwards
			fleet.ForwardErrors += cs.ForwardErrors
			fleet.Failovers += cs.Failovers
			fleet.ReplicationSent += cs.Replication.Sent
			fleet.ReplicationFailed += cs.Replication.Failed
			fleet.ReplicationDropped += cs.Replication.Dropped
		}
	}
	if lookups := fleet.CacheHits + fleet.CacheMisses; lookups > 0 {
		fleet.CacheHitRate = float64(fleet.CacheHits) / float64(lookups)
	}
	s.writeJSON(w, http.StatusOK, resp)
	return nil
}

// metricsSnapshot renders the full /metrics document: the server
// counters, plus the cluster section when clustering is enabled (the
// single-node document is unchanged).
func (s *Server) metricsSnapshot() Snapshot {
	snap := s.metrics.Snapshot()
	if s.cluster != nil {
		cs := s.cluster.Snapshot()
		snap.Cluster = &cs
	}
	return snap
}
