package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"xbar/internal/cluster"
)

// testFleet is an in-process multi-node cluster over real listeners.
// The peer-URL chicken-and-egg (URLs must be known at construction,
// ports only after binding) is solved by pre-binding port-0 listeners
// and handing them to the servers via UseListener.
type testFleet struct {
	ids  []string
	srvs map[string]*Server
	urls map[string]string
}

// newTestFleet starts n clustered nodes ("n0".."n<n-1>"), each serving
// on a loopback port, and tears them down with the test. mutate (may
// be nil) adjusts each node's config before construction.
func newTestFleet(t testing.TB, n int, mutate func(id string, cfg *Config)) *testFleet {
	t.Helper()
	f := &testFleet{srvs: make(map[string]*Server, n), urls: make(map[string]string, n)}
	lns := make([]net.Listener, n)
	peers := make(map[string]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("n%d", i)
		lns[i] = ln
		f.ids = append(f.ids, id)
		peers[id] = "http://" + ln.Addr().String()
	}
	for i, id := range f.ids {
		cfg := Config{NodeID: id, Peers: peers, Workers: 1}
		if mutate != nil {
			mutate(id, &cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.UseListener(lns[i])
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		go s.Serve() //lint:allow errcheck test server; Shutdown's error is the one that matters
		f.srvs[id] = s
		f.urls[id] = peers[id]
		t.Cleanup(func() { f.stop(t, id) })
	}
	return f
}

// stop shuts one node down; repeated stops are no-ops.
func (f *testFleet) stop(t testing.TB, id string) {
	t.Helper()
	s := f.srvs[id]
	if s == nil {
		return
	}
	delete(f.srvs, id)
	// Drop the test client's pooled conns first: a dialed-but-unused
	// keep-alive conn (StateNew) stalls Shutdown for ~5s otherwise.
	http.DefaultClient.CloseIdleConnections()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown %s: %v", id, err)
	}
}

// post sends body to one node and returns status, the raw response
// bytes and the serving node (the X-Xbar-Node response header).
func (f *testFleet) post(t testing.TB, id, path string, body any, hdr map[string]string) (int, []byte, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, f.urls[id]+path, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header.Get(cluster.HeaderNode)
}

// ownerOf returns the fleet node owning the blocking-request cache key
// for spec (any node's ring view answers — membership is static).
func (f *testFleet) ownerOf(t testing.TB, spec SwitchSpec) string {
	t.Helper()
	for _, s := range f.srvs {
		sw, err := s.buildSwitch(spec)
		if err != nil {
			t.Fatal(err)
		}
		return s.cluster.Owner(cacheKey(alg1, sw))
	}
	t.Fatal("empty fleet")
	return ""
}

// fleetMisses sums solver-cache misses across the live fleet.
func (f *testFleet) fleetMisses() int64 {
	var total int64
	for _, s := range f.srvs {
		total += s.metrics.cacheMisses.Load()
	}
	return total
}

// nonOwner returns a live node other than owner.
func (f *testFleet) nonOwner(t testing.TB, owner string) string {
	t.Helper()
	for _, id := range f.ids {
		if id != owner && f.srvs[id] != nil {
			return id
		}
	}
	t.Fatal("no non-owner node alive")
	return ""
}

// TestClusterForwardingBitIdentical is the tentpole property: the same
// request posted to every node of a 3-node fleet returns byte-identical
// responses, all served by the key's owner, and the fleet fills the
// lattice exactly once.
func TestClusterForwardingBitIdentical(t *testing.T) {
	f := newTestFleet(t, 3, nil)
	spec := paperSpec(16)
	req := BlockingRequest{SwitchSpec: spec}
	owner := f.ownerOf(t, spec)

	var bodies [][]byte
	for _, id := range f.ids {
		status, data, servedBy := f.post(t, id, "/v1/blocking", req, nil)
		if status != http.StatusOK {
			t.Fatalf("node %s: status %d: %s", id, status, data)
		}
		if servedBy != owner {
			t.Errorf("node %s: served by %q, want owner %q", id, servedBy, owner)
		}
		bodies = append(bodies, data)
	}
	// Cached flips false->true between the owner's first and later
	// serves, so strip it before comparing: the measures must match to
	// the byte.
	norm := func(b []byte) string {
		return string(bytes.ReplaceAll(b, []byte(`"cached":true`), []byte(`"cached":false`)))
	}
	for i := 1; i < len(bodies); i++ {
		if norm(bodies[i]) != norm(bodies[0]) {
			t.Errorf("node %s response differs:\n%s\nvs\n%s", f.ids[i], bodies[i], bodies[0])
		}
	}
	if got := f.fleetMisses(); got != 1 {
		t.Errorf("fleet-wide solver-cache misses = %d, want 1", got)
	}
	// The owner's cluster counters saw the two proxied requests.
	served := f.srvs[owner].cluster.Snapshot().ForwardedServed
	if served != 2 {
		t.Errorf("owner forwarded_served = %d, want 2", served)
	}
}

// TestClusterForwardLoopGuard pins the loop guard: a request already
// carrying the forwarded marker is served where it lands, even by a
// node that does not own its key.
func TestClusterForwardLoopGuard(t *testing.T) {
	f := newTestFleet(t, 2, nil)
	spec := paperSpec(12)
	owner := f.ownerOf(t, spec)
	other := f.nonOwner(t, owner)
	status, data, servedBy := f.post(t, other, "/v1/blocking", BlockingRequest{SwitchSpec: spec},
		map[string]string{cluster.HeaderForwarded: owner})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	if servedBy != other {
		t.Errorf("served by %q, want the non-owner %q (no re-forward)", servedBy, other)
	}
	if misses := f.srvs[other].metrics.cacheMisses.Load(); misses != 1 {
		t.Errorf("non-owner misses = %d, want 1 (computed locally)", misses)
	}
	if fwd := f.srvs[other].cluster.Snapshot().Forwards; fwd != 0 {
		t.Errorf("non-owner forwarded %d requests under the loop guard", fwd)
	}
}

// TestClusterDeadPeerAtStartup: a fleet whose peer never existed (its
// port is closed). Requests owned by the dead node fail over to local
// compute — 200, answer bit-identical to single-node, failover counted.
func TestClusterDeadPeerAtStartup(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close() //lint:allow errcheck freeing the reserved port is the point

	live, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		NodeID:  "live",
		Peers:   map[string]string{"live": "http://" + live.Addr().String(), "dead": deadURL},
		Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.UseListener(live)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	go s.Serve() //lint:allow errcheck test server; Shutdown's error is the one that matters
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) //lint:allow errcheck test teardown
	})

	// Find a spec the dead node owns.
	var spec SwitchSpec
	found := false
	for n := 4; n < 64 && !found; n++ {
		spec = paperSpec(n)
		sw, err := s.buildSwitch(spec)
		if err != nil {
			t.Fatal(err)
		}
		found = s.cluster.Owner(cacheKey(alg1, sw)) == "dead"
	}
	if !found {
		t.Fatal("no spec owned by the dead node in the probed range")
	}

	_, single := newTestServer(t, Config{Workers: 1})
	var want, got BlockingResponse
	if code := postJSON(t, single, "/v1/blocking", BlockingRequest{SwitchSpec: spec}, &want); code != http.StatusOK {
		t.Fatalf("single-node status %d", code)
	}

	url := "http://" + s.Addr() + "/v1/blocking"
	buf, _ := json.Marshal(BlockingRequest{SwitchSpec: spec})
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close() //lint:allow errcheck body already read
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.LogG != want.LogG || got.Classes[0].Blocking != want.Classes[0].Blocking {
		t.Errorf("failover answer %+v differs from single-node %+v", got, want)
	}
	snap := s.cluster.Snapshot()
	if snap.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", snap.Failovers)
	}
	// Second request: the dead peer is now behind its backoff gate, so
	// the failover is immediate (skipped_down) and still correct.
	resp, err = http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //lint:allow errcheck only the status matters
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gated failover status %d", resp.StatusCode)
	}
	if sd := s.cluster.Snapshot().Peers["dead"].SkippedDown; sd != 1 {
		t.Errorf("skipped_down = %d, want 1", sd)
	}
}

// TestClusterPeerDiesMidRun: the owner node is killed after serving a
// key; the survivor then fails over to local compute for that key.
func TestClusterPeerDiesMidRun(t *testing.T) {
	f := newTestFleet(t, 2, nil)
	spec := paperSpec(10)
	owner := f.ownerOf(t, spec)
	other := f.nonOwner(t, owner)
	req := BlockingRequest{SwitchSpec: spec}

	if status, data, _ := f.post(t, other, "/v1/blocking", req, nil); status != http.StatusOK {
		t.Fatalf("pre-kill status %d: %s", status, data)
	}
	f.stop(t, owner)
	status, data, servedBy := f.post(t, other, "/v1/blocking", req, nil)
	if status != http.StatusOK {
		t.Fatalf("post-kill status %d: %s", status, data)
	}
	if servedBy != other {
		t.Errorf("post-kill served by %q, want local %q", servedBy, other)
	}
	if fo := f.srvs[other].cluster.Snapshot().Failovers; fo != 1 {
		t.Errorf("failovers = %d, want 1", fo)
	}
}

// TestClusterSingleFlightAcrossNodes races concurrent identical
// requests against both nodes: forwarded and local arrivals must
// collapse onto one fill on the owner (fleet-wide misses == 1) and
// every response must carry the same measures.
func TestClusterSingleFlightAcrossNodes(t *testing.T) {
	f := newTestFleet(t, 2, nil)
	spec := paperSpec(24)
	req := BlockingRequest{SwitchSpec: spec}
	const perNode = 4
	var wg sync.WaitGroup
	results := make(chan BlockingResponse, 2*perNode)
	for _, id := range f.ids {
		for i := 0; i < perNode; i++ {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				status, data, _ := f.post(t, id, "/v1/blocking", req, nil)
				if status != http.StatusOK {
					t.Errorf("node %s: status %d: %s", id, status, data)
					return
				}
				var br BlockingResponse
				if err := json.Unmarshal(data, &br); err != nil {
					t.Error(err)
					return
				}
				results <- br
			}(id)
		}
	}
	wg.Wait()
	close(results)
	var first *BlockingResponse
	for br := range results {
		if first == nil {
			b := br
			first = &b
			continue
		}
		if br.LogG != first.LogG || br.Classes[0].Blocking != first.Classes[0].Blocking {
			t.Errorf("response %+v differs from %+v", br, first)
		}
	}
	if got := f.fleetMisses(); got != 1 {
		t.Errorf("fleet-wide misses = %d, want 1", got)
	}
}

// TestClusterHotKeyReplication drives one key past the hot threshold
// on its owner and waits for the successor's cache to be warmed by the
// background replication (one miss appears there without any client
// traffic).
func TestClusterHotKeyReplication(t *testing.T) {
	f := newTestFleet(t, 2, nil)
	spec := paperSpec(8)
	owner := f.ownerOf(t, spec)
	other := f.nonOwner(t, owner)
	req := BlockingRequest{SwitchSpec: spec}
	// Default HotThreshold is 8: ten rapid hits on the owner cross it.
	for i := 0; i < 10; i++ {
		if status, data, _ := f.post(t, owner, "/v1/blocking", req, nil); status != http.StatusOK {
			t.Fatalf("hit %d: status %d: %s", i, status, data)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.srvs[other].metrics.cacheMisses.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if misses := f.srvs[other].metrics.cacheMisses.Load(); misses != 1 {
		t.Fatalf("successor misses = %d, want 1 (replication fill)", misses)
	}
	// DrainReplication only empties the queue; the worker may still be
	// mid-flight on the last job, so poll the sent counter.
	f.srvs[owner].cluster.DrainReplication(time.Second)
	for f.srvs[owner].cluster.Snapshot().Replication.Sent == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if sent := f.srvs[owner].cluster.Snapshot().Replication.Sent; sent != 1 {
		t.Errorf("replication sent = %d, want 1", sent)
	}
	// The successor now answers the key from its own cache: posting
	// there with the forwarded marker (as a failover client would after
	// the owner dies) is a hit, not a fill.
	hitsBefore := f.srvs[other].metrics.cacheHits.Load()
	f.post(t, other, "/v1/blocking", req, map[string]string{cluster.HeaderForwarded: owner})
	if hits := f.srvs[other].metrics.cacheHits.Load(); hits != hitsBefore+1 {
		t.Errorf("successor hits %d -> %d, want a warm hit", hitsBefore, hits)
	}
}

// TestClusterRollup exercises GET /v1/cluster: every member row
// present, fleet counters aggregated, unreachable members marked.
func TestClusterRollup(t *testing.T) {
	f := newTestFleet(t, 3, nil)
	spec := paperSpec(16)
	for _, id := range f.ids {
		f.post(t, id, "/v1/blocking", BlockingRequest{SwitchSpec: spec}, nil)
	}
	var roll ClusterStatusResponse
	resp, err := http.Get(f.urls[f.ids[0]] + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&roll)
	resp.Body.Close() //lint:allow errcheck body already decoded
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollup status %d", resp.StatusCode)
	}
	if len(roll.Nodes) != 3 || roll.Fleet.Nodes != 3 || roll.Fleet.Reachable != 3 {
		t.Fatalf("rollup %+v", roll.Fleet)
	}
	if roll.Fleet.CacheMisses != 1 {
		t.Errorf("fleet cache misses = %d, want 1", roll.Fleet.CacheMisses)
	}
	if roll.Fleet.CacheHits < 2 {
		t.Errorf("fleet cache hits = %d, want >= 2", roll.Fleet.CacheHits)
	}
	if roll.Fleet.CacheHitRate <= 0 {
		t.Errorf("fleet hit rate = %v, want > 0", roll.Fleet.CacheHitRate)
	}
	// Kill a node: the rollup keeps answering, with the dead member
	// marked unreachable.
	f.stop(t, f.ids[2])
	resp, err = http.Get(f.urls[f.ids[0]] + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&roll)
	resp.Body.Close() //lint:allow errcheck body already decoded
	if err != nil {
		t.Fatal(err)
	}
	if roll.Fleet.Reachable != 2 {
		t.Errorf("reachable = %d after kill, want 2", roll.Fleet.Reachable)
	}
	for _, row := range roll.Nodes {
		if row.NodeID == f.ids[2] && (row.Reachable || row.Error == "") {
			t.Errorf("dead node row %+v, want unreachable with error", row)
		}
	}
}

// TestSingleNodeBitIdentity pins the no-peers contract: no cluster
// section in /metrics, no node header on responses, /v1/cluster 404 —
// the pre-cluster daemon's observable surface.
func TestSingleNodeBitIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	buf, _ := json.Marshal(BlockingRequest{SwitchSpec: paperSpec(8)})
	resp, err := http.Post(ts.URL+"/v1/blocking", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //lint:allow errcheck only headers matter
	if h := resp.Header.Get(cluster.HeaderNode); h != "" {
		t.Errorf("single-node response carries %s: %q", cluster.HeaderNode, h)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(mresp.Body)
	mresp.Body.Close() //lint:allow errcheck body already read
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["cluster"]; ok {
		t.Error("single-node /metrics carries a cluster section")
	}

	cresp, err := http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close() //lint:allow errcheck only the status matters
	if cresp.StatusCode != http.StatusNotFound {
		t.Errorf("single-node /v1/cluster status %d, want 404", cresp.StatusCode)
	}
}

// TestReadyz pins the readiness lifecycle: ready after New, draining
// (503) once shutdown begins, while /healthz stays 200 throughout.
func TestReadyz(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close() //lint:allow errcheck only the status matters
		return resp.StatusCode
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("ready /readyz %d, want 200", code)
	}
	s.draining.Store(true)
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("draining /readyz %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("draining /healthz %d, want 200 (alive, not ready)", code)
	}
	s.draining.Store(false)
	s.ready.Store(false)
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("pre-ready /readyz %d, want 503", code)
	}
}

// TestClusterMetricsSection checks the clustered /metrics document
// carries the cluster family with per-peer rows.
func TestClusterMetricsSection(t *testing.T) {
	f := newTestFleet(t, 2, nil)
	spec := paperSpec(16)
	owner := f.ownerOf(t, spec)
	other := f.nonOwner(t, owner)
	f.post(t, other, "/v1/blocking", BlockingRequest{SwitchSpec: spec}, nil)

	resp, err := http.Get(f.urls[other] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close() //lint:allow errcheck body already decoded
	if err != nil {
		t.Fatal(err)
	}
	cs := snap.Cluster
	if cs == nil {
		t.Fatal("clustered /metrics has no cluster section")
	}
	if cs.NodeID != other || cs.Forwards != 1 {
		t.Errorf("cluster section %+v, want node %s with 1 forward", cs, other)
	}
	ps, ok := cs.Peers[owner]
	if !ok || ps.Forwards != 1 || !ps.Healthy {
		t.Errorf("peer row %+v, want 1 healthy forward to %s", ps, owner)
	}
	if ps.Latency.Le100us+ps.Latency.Le1ms+ps.Latency.Le10ms+ps.Latency.Le100ms+
		ps.Latency.Le1s+ps.Latency.Le10s+ps.Latency.Over10s != 1 {
		t.Errorf("forward latency histogram %+v sums != 1", ps.Latency)
	}
}
