package server

import "testing"

// BenchmarkForwardedVsLocalHit prices the forwarding hop: the same
// warm cache hit served locally by the key's owner versus proxied to
// the owner from a non-owner peer (one extra loopback HTTP round trip
// over the persistent transport). The gap is the per-request cost of
// consistent-hash ownership; docs/PERFORMANCE.md §10 tracks it.
func BenchmarkForwardedVsLocalHit(b *testing.B) {
	if testing.Short() {
		// At -benchtime 1x the single request measures fleet boot,
		// transport dial and first-touch costs, not a warm hit — noise
		// the bench-short gate would misread as a regression.
		b.Skip("request-level benchmark is warmup-dominated at one iteration")
	}
	f := newTestFleet(b, 2, nil)
	spec := paperSpec(16)
	owner := f.ownerOf(b, spec)
	other := f.nonOwner(b, owner)
	// One real fill, so both paths below are pure cache hits.
	if st, _, _ := f.post(b, owner, "/v1/blocking", spec, nil); st != 200 {
		b.Fatalf("warm fill: status %d", st)
	}
	for _, bc := range []struct {
		name string
		id   string
	}{{"local", owner}, {"forwarded", other}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if st, _, _ := f.post(b, bc.id, "/v1/blocking", spec, nil); st != 200 {
					b.Fatalf("status %d", st)
				}
			}
		})
	}
}

// BenchmarkClusterAggregateHitRate drives a zipf-ish repeated workload
// (8 distinct switches, requests round-robined across a 3-node fleet)
// and reports the fleet-wide aggregate hit rate as hits/op. With
// consistent-hash ownership every distinct key fills exactly once
// fleet-wide, so the aggregate hit rate approaches 1 - 8/requests;
// without forwarding each node would fill its own copy (3x the misses
// and a hit rate flat in node count — the regression this PR removes).
func BenchmarkClusterAggregateHitRate(b *testing.B) {
	if testing.Short() {
		// One iteration is one request — a guaranteed miss plus fleet
		// boot; there is no hit rate to measure.
		b.Skip("hit-rate benchmark is meaningless at one iteration")
	}
	// Replication off: at bench iteration counts every key crosses the
	// hot threshold and each successor's warming fill would count as a
	// second legitimate miss, clouding the one-fill-per-key assertion.
	f := newTestFleet(b, 3, func(id string, cfg *Config) { cfg.HotReplicas = -1 })
	specs := make([]SwitchSpec, 8)
	for i := range specs {
		specs[i] = paperSpec(4 + 2*i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := f.ids[i%len(f.ids)]
		if st, _, _ := f.post(b, id, "/v1/blocking", specs[i%len(specs)], nil); st != 200 {
			b.Fatalf("status %d", st)
		}
	}
	b.StopTimer()
	var hits, misses int64
	for _, s := range f.srvs {
		hits += s.metrics.cacheHits.Load() + s.metrics.cacheShared.Load()
		misses += s.metrics.cacheMisses.Load()
	}
	if misses > int64(len(specs)) {
		b.Fatalf("fleet misses = %d, want <= %d (one fill per distinct key)", misses, len(specs))
	}
	b.ReportMetric(float64(hits)/float64(hits+misses), "hitrate")
}
