// Package server implements xbard's HTTP service layer: the paper's
// analytical engine — Algorithm 1/2 blocking and concurrency, the
// Section 4 revenue measures, admission decisions, amortized sub-size
// sweeps — behind a stdlib-only JSON API.
//
// The layer is built for sustained concurrent traffic:
//
//   - an LRU solver cache keyed by the canonicalized model
//     (algorithm, dimensions, per-route classes — names and fill
//     schedule excluded, results are bit-identical across schedules)
//     so repeated evaluations of one operating point share a single
//     lattice fill;
//   - single-flight deduplication, so concurrent identical requests
//     wait for one fill instead of racing N of them;
//   - Solver.Reuse recycling: evicted entries return their lattices to
//     a free pool and the next miss refills in place of allocating;
//   - a bounded solve semaphore sized against the wavefront worker
//     pool, so concurrent fills do not oversubscribe GOMAXPROCS;
//   - strict input validation (finite floats, dimension and class
//     caps, unknown-field rejection), request body limits, per-request
//     timeouts and graceful drain.
//
// See docs/SERVER.md for the API reference and tuning guidance.
package server

import (
	"fmt"
	"runtime"
	"time"

	"xbar/internal/cluster"
	"xbar/internal/core"
	"xbar/internal/parallel"
)

// Config parameterizes a Server. The zero value is usable: every field
// left at zero is replaced by the default documented on it.
type Config struct {
	// Addr is the API listen address. Default ":8480".
	Addr string
	// DebugAddr, when non-empty, serves net/http/pprof and /metrics on
	// a second mux. Keep it bound to loopback; there is no auth.
	DebugAddr string
	// MaxBodyBytes caps request bodies; larger requests get 413.
	// Default 1 MiB.
	MaxBodyBytes int64
	// RequestTimeout bounds one request's wait for a solver slot and
	// for a deduplicated in-flight fill. A lattice fill itself is not
	// cancellable mid-flight; see docs/SERVER.md. Default 30s.
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: in-flight requests get
	// this long to finish after SIGTERM. Default 15s.
	DrainTimeout time.Duration
	// CacheSize is the solver-cache capacity in entries (one retained
	// lattice each, O(N1*N2) memory per entry). Default 64.
	CacheSize int
	// ScenarioCacheSize is the /v1/scenario result-cache capacity in
	// entries (one evaluated measure set each — small and immutable,
	// unlike the solver cache's lattices). Default 64.
	ScenarioCacheSize int
	// MaxDim caps switch dimensions the exact tier will fill a lattice
	// for. Default 1024.
	MaxDim int
	// MaxAsymDim caps switch dimensions for requests carrying a
	// dispatch policy other than exact: the asymptotic tier is O(R)
	// whatever the size, so the cap exists only to keep inputs sane.
	// Sizes in (MaxDim, MaxAsymDim] are asymptotic-only — requesting
	// one with dispatch=exact is a 422. Default 1 << 20.
	MaxAsymDim int
	// MaxClasses caps accepted traffic-class counts. Default 64.
	MaxClasses int
	// MaxSweepPoints caps one /v1/sweep request's point list.
	// Default 4096.
	MaxSweepPoints int
	// MaxGridPoints caps one /v1/grid request's point list. Grid points
	// are costlier than sweep points (each may be a distinct lattice
	// fill), so the default is smaller: 256.
	MaxGridPoints int
	// MaxConcurrent bounds the solves and lattice reads in flight at
	// once (the solver semaphore). Default runtime.GOMAXPROCS(0).
	MaxConcurrent int
	// NodeID names this node in a cluster; it must be a key of Peers.
	// Ignored (may stay empty) when Peers is empty.
	NodeID string
	// Peers maps every cluster member's id — including this node's —
	// to its API base URL ("http://host:port"). Empty means single-node
	// operation: the cluster layer is disabled entirely and the server
	// behaves bit-identically to the pre-cluster daemon.
	Peers map[string]string
	// VNodes is the virtual nodes per member on the consistent-hash
	// ring. Default 64.
	VNodes int
	// HotReplicas is how many ring successors each owner replicates
	// its hottest cache keys to (-1 disables replication). Default 1,
	// capped at len(Peers)-1.
	HotReplicas int
	// Workers and Tile select the wavefront fill schedule passed to
	// core.Parallel for every lattice fill. Workers = 0 divides
	// GOMAXPROCS by MaxConcurrent so that MaxConcurrent concurrent
	// fills together fill the machine instead of oversubscribing it;
	// Workers = 1 forces sequential fills.
	Workers int
	Tile    int
	// Logf, when non-nil, receives lifecycle log lines (Printf style).
	Logf func(format string, args ...any)
}

// withDefaults returns cfg with every zero field replaced by its
// documented default.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8480"
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 15 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 64
	}
	if c.ScenarioCacheSize == 0 {
		c.ScenarioCacheSize = 64
	}
	if c.MaxDim == 0 {
		c.MaxDim = 1024
	}
	if c.MaxAsymDim == 0 {
		c.MaxAsymDim = 1 << 20
	}
	if c.MaxClasses == 0 {
		c.MaxClasses = 64
	}
	if c.MaxSweepPoints == 0 {
		c.MaxSweepPoints = 4096
	}
	if c.MaxGridPoints == 0 {
		c.MaxGridPoints = 256
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.Workers == 0 {
		c.Workers = max(1, parallel.Workers(0)/c.MaxConcurrent)
	}
	return c
}

// validate rejects configurations the server cannot run with. It is
// called on the defaulted config.
func (c Config) validate() error {
	if c.MaxBodyBytes < 0 {
		return fmt.Errorf("server: MaxBodyBytes %d is negative", c.MaxBodyBytes)
	}
	if c.RequestTimeout < 0 || c.DrainTimeout < 0 {
		return fmt.Errorf("server: negative timeout (request %v, drain %v)", c.RequestTimeout, c.DrainTimeout)
	}
	if c.CacheSize < 1 {
		return fmt.Errorf("server: CacheSize %d, must be >= 1", c.CacheSize)
	}
	if c.ScenarioCacheSize < 1 {
		return fmt.Errorf("server: ScenarioCacheSize %d, must be >= 1", c.ScenarioCacheSize)
	}
	if c.MaxDim < 1 || c.MaxClasses < 1 || c.MaxSweepPoints < 1 || c.MaxGridPoints < 1 {
		return fmt.Errorf("server: limits must be >= 1 (MaxDim %d, MaxClasses %d, MaxSweepPoints %d, MaxGridPoints %d)",
			c.MaxDim, c.MaxClasses, c.MaxSweepPoints, c.MaxGridPoints)
	}
	if c.MaxAsymDim < c.MaxDim {
		return fmt.Errorf("server: MaxAsymDim %d is below MaxDim %d", c.MaxAsymDim, c.MaxDim)
	}
	if c.MaxConcurrent < 1 {
		return fmt.Errorf("server: MaxConcurrent %d, must be >= 1", c.MaxConcurrent)
	}
	if len(c.Peers) > 0 {
		if _, ok := c.Peers[c.NodeID]; !ok {
			return fmt.Errorf("server: NodeID %q is not a member of Peers", c.NodeID)
		}
	} else if c.NodeID != "" {
		return fmt.Errorf("server: NodeID %q without Peers", c.NodeID)
	}
	if c.VNodes < 0 {
		return fmt.Errorf("server: VNodes %d is negative", c.VNodes)
	}
	if c.Workers < 0 || c.Tile < 0 {
		return fmt.Errorf("server: negative fill schedule (workers %d, tile %d)", c.Workers, c.Tile)
	}
	return nil
}

// clusterConfig derives the cluster layer's configuration; callers
// check len(Peers) > 0 first.
func (c Config) clusterConfig() cluster.Config {
	return cluster.Config{
		NodeID:      c.NodeID,
		Peers:       c.Peers,
		VNodes:      c.VNodes,
		HotReplicas: c.HotReplicas,
		Logf:        c.Logf,
	}
}

// fillOptions is the lattice-fill schedule every solve runs with.
func (c Config) fillOptions() core.Options {
	return core.Parallel(c.Workers, c.Tile)
}

// logf forwards to Logf when configured.
func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}
