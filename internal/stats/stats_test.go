package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWelfordAgainstNaive(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, r := range raw {
			if !math.IsNaN(r) && !math.IsInf(r, 0) && math.Abs(r) < 1e6 {
				xs = append(xs, r)
			}
		}
		if len(xs) < 2 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, x := range xs {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(len(xs)-1)
		okMean := math.Abs(w.Mean()-mean) <= 1e-9*math.Max(1, math.Abs(mean))
		okVar := math.Abs(w.Variance()-naiveVar) <= 1e-6*math.Max(1, naiveVar)
		return okMean && okVar && w.N() == int64(len(xs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 {
		t.Error("empty Welford not zero")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Variance() != 0 {
		t.Error("single-sample Welford wrong")
	}
}

func TestTimeWeightedPiecewise(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(0, 2) // value 2 on [0, 1)
	tw.Observe(1, 4) // value 4 on [1, 3)
	tw.Observe(3, 0) // value 0 on [3, 5)
	tw.CloseAt(5)
	want := (2*1 + 4*2 + 0*2) / 5.0
	if got := tw.Mean(); math.Abs(got-want) > 1e-12 {
		t.Errorf("time mean %v, want %v", got, want)
	}
	if tw.Duration() != 5 {
		t.Errorf("duration %v, want 5", tw.Duration())
	}
}

func TestTimeWeightedConstant(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(10, 7)
	tw.CloseAt(20)
	if got := tw.Mean(); got != 7 {
		t.Errorf("constant process mean %v, want 7", got)
	}
}

func TestTimeWeightedEmpty(t *testing.T) {
	var tw TimeWeighted
	if tw.Mean() != 0 {
		t.Error("empty TimeWeighted mean not 0")
	}
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("backwards time did not panic")
		}
	}()
	var tw TimeWeighted
	tw.Observe(5, 1)
	tw.Observe(4, 2)
}

func TestBatchMeansCoverage(t *testing.T) {
	// With normal batches, a 95% CI should contain the true mean about
	// 95% of the time.
	rng := rand.New(rand.NewSource(1))
	const trials = 400
	const batches = 20
	covered := 0
	for trial := 0; trial < trials; trial++ {
		bs := make([]float64, batches)
		for i := range bs {
			bs[i] = 3 + rng.NormFloat64()
		}
		if BatchMeans(bs, 0.95).Contains(3) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.91 || rate > 0.99 {
		t.Errorf("95%% CI covered %v of trials", rate)
	}
}

func TestBatchMeansDegenerate(t *testing.T) {
	ci := BatchMeans([]float64{4}, 0.95)
	if !math.IsInf(ci.HalfWidth, 1) {
		t.Error("single batch should give infinite half-width")
	}
	ci = BatchMeans([]float64{2, 2, 2, 2}, 0.95)
	if ci.HalfWidth != 0 || ci.Mean != 2 {
		t.Errorf("constant batches: %+v", ci)
	}
}

func TestCIEndpoints(t *testing.T) {
	ci := CI{Mean: 10, HalfWidth: 2, Level: 0.95, N: 5}
	if ci.Lo() != 8 || ci.Hi() != 12 {
		t.Error("CI endpoints wrong")
	}
	if !ci.Contains(9) || ci.Contains(13) {
		t.Error("CI Contains wrong")
	}
	if ci.String() == "" {
		t.Error("CI String empty")
	}
}

func TestTQuantileTable(t *testing.T) {
	cases := []struct {
		df    int
		level float64
		want  float64
	}{
		{1, 0.95, 12.706},
		{10, 0.95, 2.228},
		{30, 0.95, 2.042},
		{5, 0.99, 4.032},
	}
	for _, c := range cases {
		if got := TQuantile(c.df, c.level); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("TQuantile(%d, %v) = %v, want %v", c.df, c.level, got, c.want)
		}
	}
	// Large df approaches the normal quantile.
	if got := TQuantile(10000, 0.95); math.Abs(got-1.96) > 0.01 {
		t.Errorf("TQuantile(10000, .95) = %v", got)
	}
	if got := TQuantile(0, 0.95); !math.IsInf(got, 1) {
		t.Errorf("TQuantile(0) = %v, want +Inf", got)
	}
	// Unusual level falls back to the normal quantile.
	if got := TQuantile(50, 0.90); math.Abs(got-1.6449) > 0.01 {
		t.Errorf("TQuantile(50, .90) = %v, want ~1.645", got)
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.995, 2.575829},
		{0.025, -1.959964},
		{0.999, 3.090232},
		{0.001, -3.090232},
	}
	for _, c := range cases {
		if got := normalQuantile(c.p); math.Abs(got-c.want) > 1e-5 {
			t.Errorf("normalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("normalQuantile(0) did not panic")
		}
	}()
	normalQuantile(0)
}
