// Package stats provides the estimation machinery for the simulation
// experiments: running moments (Welford), time-weighted averages for
// continuous-time state processes, and batch-means confidence
// intervals.
package stats

import (
	"fmt"
	"math"
)

// Welford accumulates a sample mean and variance in one pass with
// numerically stable updates. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// TimeWeighted accumulates the time average of a piecewise-constant
// process: call Observe(t, v) at each change point with the new value;
// the value v persists until the next call. The zero value is ready;
// the first Observe sets the origin.
type TimeWeighted struct {
	started  bool
	lastT    float64
	lastV    float64
	area     float64
	duration float64
}

// Observe records that the process takes value v from time t onward.
// Times must be non-decreasing.
func (tw *TimeWeighted) Observe(t, v float64) {
	if tw.started {
		if t < tw.lastT {
			//lint:allow libpanic simulator clock monotonicity invariant; a violation means the event queue itself is broken
			panic(fmt.Sprintf("stats: time went backwards: %v < %v", t, tw.lastT))
		}
		dt := t - tw.lastT
		tw.area += tw.lastV * dt
		tw.duration += dt
	}
	tw.started = true
	tw.lastT = t
	tw.lastV = v
}

// CloseAt finalizes the accumulation at time t without changing the
// value, and may be called once at the end of a run.
func (tw *TimeWeighted) CloseAt(t float64) { tw.Observe(t, tw.lastV) }

// Mean returns the time average over the observed horizon.
func (tw *TimeWeighted) Mean() float64 {
	if tw.duration == 0 { //lint:allow floatcmp guards exact division by zero; a tiny horizon is a well-conditioned area/duration ratio
		return 0
	}
	return tw.area / tw.duration
}

// Duration returns the accumulated time span.
func (tw *TimeWeighted) Duration() float64 { return tw.duration }

// CI is a two-sided confidence interval around a point estimate.
type CI struct {
	Mean      float64
	HalfWidth float64
	SE        float64 // standard error of the mean (HalfWidth / t-quantile)
	Level     float64 // e.g. 0.95
	N         int     // batches or samples behind the estimate
}

// Lo returns the interval's lower endpoint.
func (c CI) Lo() float64 { return c.Mean - c.HalfWidth }

// Hi returns the interval's upper endpoint.
func (c CI) Hi() float64 { return c.Mean + c.HalfWidth }

// Contains reports whether v lies inside the interval.
func (c CI) Contains(v float64) bool { return v >= c.Lo() && v <= c.Hi() }

func (c CI) String() string {
	return fmt.Sprintf("%.6g ± %.3g (%.0f%%, n=%d)", c.Mean, c.HalfWidth, c.Level*100, c.N)
}

// BatchMeans builds a confidence interval from independent batch
// estimates, the standard output analysis for steady-state simulation.
func BatchMeans(batches []float64, level float64) CI {
	var w Welford
	for _, b := range batches {
		w.Add(b)
	}
	n := len(batches)
	ci := CI{Mean: w.Mean(), Level: level, N: n}
	if n >= 2 {
		se := w.StdDev() / math.Sqrt(float64(n))
		ci.SE = se
		ci.HalfWidth = TQuantile(n-1, level) * se
	} else {
		ci.SE = math.Inf(1)
		ci.HalfWidth = math.Inf(1)
	}
	return ci
}

// t-distribution two-sided critical values at the 95% level for small
// degrees of freedom; beyond the table the normal quantile is close
// enough.
var t95 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
	2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
	2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
	2.048, 2.045, 2.042,
}

var t99 = []float64{
	0, 63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250,
	3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878,
	2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771,
	2.763, 2.756, 2.750,
}

// TQuantile returns the two-sided Student-t critical value for the
// given degrees of freedom at confidence levels 0.95 or 0.99 (other
// levels fall back to the normal approximation).
func TQuantile(df int, level float64) float64 {
	if df < 1 {
		return math.Inf(1)
	}
	var table []float64
	var z float64
	switch {
	case math.Abs(level-0.95) < 1e-9:
		table, z = t95, 1.959964
	case math.Abs(level-0.99) < 1e-9:
		table, z = t99, 2.575829
	default:
		return normalQuantile((1 + level) / 2)
	}
	if df < len(table) {
		return table[df]
	}
	// Fisher's correction toward the normal quantile for large df.
	return z + (z*z*z+z)/(4*float64(df))
}

// normalQuantile returns the standard normal quantile via the
// Beasley-Springer-Moro rational approximation (|error| < 3e-9 on
// (0, 1)).
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: normalQuantile(%v)", p))
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
