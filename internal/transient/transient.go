// Package transient computes the time-dependent behaviour of the
// crossbar chain by uniformization (randomization): how long after a
// cold start, a load step, or a reconfiguration the switch takes to
// reach the steady state the paper's formulas describe. The stationary
// analysis answers "what does the operating point look like"; this
// package answers "when are we entitled to use it".
//
// Uniformization rewrites the CTMC with generator Q as a discrete
// chain P = I + Q/Lambda subordinated to a Poisson process of rate
// Lambda >= max_i |Q_ii|:
//
//	pi(t) = sum_k e^{-Lambda t} (Lambda t)^k / k! * pi(0) P^k,
//
// truncated once the Poisson tail falls below the requested tolerance.
// Every iterate is a probability vector, so the computation is
// numerically benign at any t.
package transient

import (
	"fmt"
	"math"

	"xbar/internal/statespace"
)

// Options tunes the uniformization.
type Options struct {
	// Tol is the permitted truncation mass (default 1e-10).
	Tol float64
	// MaxSteps caps the Poisson series length (default 1e6).
	MaxSteps int
}

func (o Options) withDefaults() Options {
	if o.Tol == 0 { //lint:allow floatcmp zero value of Options.Tol selects the default (Go zero-value idiom)
		o.Tol = 1e-10
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 1_000_000
	}
	return o
}

// EmptyStart returns the distribution concentrated on the empty switch
// (k = 0), the cold-start initial condition.
func EmptyStart(chain *statespace.Chain) ([]float64, error) {
	zero := make([]int, len(chain.Switch.Classes))
	i := chain.StateIndex(zero)
	if i < 0 {
		return nil, fmt.Errorf("transient: empty state not in state space")
	}
	pi0 := make([]float64, len(chain.States))
	pi0[i] = 1
	return pi0, nil
}

// StationaryStart returns the stationary distribution of from as an
// initial condition for a DIFFERENT chain over the same state space —
// the load-step scenario: the switch has been running under one
// traffic mix and the mix changes at t = 0. The two chains must share
// dimensions and per-class bandwidths (their Gamma(N) then coincide).
func StationaryStart(from, to *statespace.Chain) ([]float64, error) {
	if len(from.States) != len(to.States) {
		return nil, fmt.Errorf("transient: state spaces differ (%d vs %d states)",
			len(from.States), len(to.States))
	}
	for i := range from.States {
		a, b := from.States[i], to.States[i]
		if len(a) != len(b) {
			return nil, fmt.Errorf("transient: state %d has different class counts", i)
		}
		for j := range a {
			if a[j] != b[j] {
				return nil, fmt.Errorf("transient: state %d differs (%v vs %v)", i, a, b)
			}
		}
	}
	return from.Stationary()
}

// Distributions returns pi(t) for each requested time (which must be
// non-negative), starting from pi0.
func Distributions(chain *statespace.Chain, pi0 []float64, times []float64, opts Options) ([][]float64, error) {
	opts = opts.withDefaults()
	n := len(chain.States)
	if len(pi0) != n {
		return nil, fmt.Errorf("transient: initial vector has %d entries for %d states", len(pi0), n)
	}
	sum := 0.0
	for _, p := range pi0 {
		if p < 0 {
			return nil, fmt.Errorf("transient: negative initial probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("transient: initial vector sums to %v", sum)
	}
	for _, t := range times {
		if t < 0 {
			return nil, fmt.Errorf("transient: negative time %v", t)
		}
	}

	q := chain.Generator()
	lambda := 0.0
	for i := 0; i < n; i++ {
		if d := -q[i][i]; d > lambda {
			lambda = d
		}
	}
	// A chain with no transitions (single absorbing state) is already
	// stationary.
	if lambda == 0 { //lint:allow floatcmp the uniformization rate is exactly zero only for a chain with no transitions at all
		out := make([][]float64, len(times))
		for i := range out {
			out[i] = append([]float64(nil), pi0...)
		}
		return out, nil
	}
	lambda *= 1.02 // slack keeps P's diagonal strictly positive (aperiodic)

	// Dense uniformized matrix P = I + Q/Lambda.
	p := make([][]float64, n)
	for i := range p {
		p[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			p[i][j] = q[i][j] / lambda
		}
		p[i][i] += 1
	}

	out := make([][]float64, len(times))
	for ti, t := range times {
		res, err := uniformizeAt(p, pi0, lambda*t, opts)
		if err != nil {
			return nil, fmt.Errorf("transient: t=%v: %w", t, err)
		}
		out[ti] = res
	}
	return out, nil
}

// uniformizeAt evaluates the Poisson mixture at Poisson mean a.
func uniformizeAt(p [][]float64, pi0 []float64, a float64, opts Options) ([]float64, error) {
	n := len(pi0)
	acc := make([]float64, n)
	cur := append([]float64(nil), pi0...)
	next := make([]float64, n)

	// Poisson weights by the stable recursion w_0 = e^-a,
	// w_{k+1} = w_k a/(k+1). For large a, e^-a underflows; scale by
	// tracking the log weight and renormalizing through the running
	// remainder instead: we accumulate until the mass covered reaches
	// 1 - tol, computing weights in log space.
	logW := -a // log w_0
	covered := 0.0
	for k := 0; ; k++ {
		w := math.Exp(logW)
		if w > 0 {
			for i := 0; i < n; i++ {
				acc[i] += w * cur[i]
			}
			covered += w
		}
		if covered >= 1-opts.Tol {
			break
		}
		if k >= opts.MaxSteps {
			return nil, fmt.Errorf("series did not converge in %d steps (covered %v)", opts.MaxSteps, covered)
		}
		// cur = cur * P.
		for j := 0; j < n; j++ {
			next[j] = 0
		}
		for i := 0; i < n; i++ {
			ci := cur[i]
			if ci == 0 { //lint:allow floatcmp skips exactly-zero probability mass; tiny mass must still propagate
				continue
			}
			row := p[i]
			for j := 0; j < n; j++ {
				next[j] += ci * row[j]
			}
		}
		cur, next = next, cur
		logW += math.Log(a / float64(k+1))
	}
	// Renormalize the truncated mixture.
	if covered > 0 {
		for i := range acc {
			acc[i] /= covered
		}
	}
	return acc, nil
}

// BlockingTrajectory returns the class-r blocking probability
// 1 - B_r as a function of time from the given start, one value per
// requested time.
func BlockingTrajectory(chain *statespace.Chain, pi0 []float64, class int, times []float64, opts Options) ([]float64, error) {
	if class < 0 || class >= len(chain.Switch.Classes) {
		return nil, fmt.Errorf("transient: class %d of %d", class, len(chain.Switch.Classes))
	}
	dists, err := Distributions(chain, pi0, times, opts)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(times))
	for i, pi := range dists {
		out[i] = chain.Measures(pi).Blocking[class]
	}
	return out, nil
}

// RelaxationTime estimates the time for the cold-started chain's
// class-0 blocking to come within frac (e.g. 0.01) of its stationary
// value, by bisection over [0, tMax]. Returns an error if tMax is not
// long enough.
func RelaxationTime(chain *statespace.Chain, frac, tMax float64, opts Options) (float64, error) {
	if frac <= 0 || frac >= 1 {
		return 0, fmt.Errorf("transient: frac %v outside (0,1)", frac)
	}
	pi0, err := EmptyStart(chain)
	if err != nil {
		return 0, err
	}
	stat, err := chain.Stationary()
	if err != nil {
		return 0, err
	}
	target := chain.Measures(stat).Blocking[0]
	within := func(t float64) (bool, error) {
		b, err := BlockingTrajectory(chain, pi0, 0, []float64{t}, opts)
		if err != nil {
			return false, err
		}
		return math.Abs(b[0]-target) <= frac*math.Max(target, 1e-300), nil
	}
	ok, err := within(tMax)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("transient: not within %v of stationary by t=%v", frac, tMax)
	}
	lo, hi := 0.0, tMax
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		ok, err := within(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
