package transient

import (
	"math"
	"testing"

	"xbar/internal/core"
	"xbar/internal/rng"
	"xbar/internal/statespace"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	s := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*s || d <= tol*1e-3
}

func chainFor(t *testing.T, sw core.Switch) *statespace.Chain {
	t.Helper()
	c, err := statespace.NewChain(sw, 50000)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestTwoStateClosedForm: a 1x1 switch is a two-state chain with the
// textbook transient P(busy at t | empty) =
// alpha/(alpha+mu) (1 - e^{-(alpha+mu) t}).
func TestTwoStateClosedForm(t *testing.T) {
	const alpha, mu = 0.7, 1.3
	sw := core.Switch{N1: 1, N2: 1, Classes: []core.Class{{A: 1, Alpha: alpha, Mu: mu}}}
	chain := chainFor(t, sw)
	pi0, err := EmptyStart(chain)
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{0, 0.1, 0.5, 1, 2, 5}
	dists, err := Distributions(chain, pi0, times, Options{})
	if err != nil {
		t.Fatal(err)
	}
	busy := chain.StateIndex([]int{1})
	for i, tt := range times {
		want := alpha / (alpha + mu) * (1 - math.Exp(-(alpha+mu)*tt))
		if got := dists[i][busy]; !almostEqual(got, want, 1e-8) {
			t.Errorf("t=%v: P(busy) = %v, want %v", tt, got, want)
		}
	}
}

func multiSwitch() core.Switch {
	return core.Switch{N1: 3, N2: 3, Classes: []core.Class{
		{A: 1, Alpha: 0.2, Mu: 1},
		{A: 2, Alpha: 0.05, Beta: 0.02, Mu: 0.7},
	}}
}

// TestConvergenceToStationary: pi(t) approaches the solved stationary
// distribution as t grows, from any start.
func TestConvergenceToStationary(t *testing.T) {
	chain := chainFor(t, multiSwitch())
	stat, err := chain.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	pi0, err := EmptyStart(chain)
	if err != nil {
		t.Fatal(err)
	}
	dists, err := Distributions(chain, pi0, []float64{0.5, 2, 30}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	distance := func(a, b []float64) float64 {
		d := 0.0
		for i := range a {
			d += math.Abs(a[i] - b[i])
		}
		return d / 2
	}
	d1 := distance(dists[0], stat)
	d2 := distance(dists[1], stat)
	d3 := distance(dists[2], stat)
	if !(d1 > d2 && d2 > d3) {
		t.Errorf("total variation not shrinking: %v, %v, %v", d1, d2, d3)
	}
	if d3 > 1e-8 {
		t.Errorf("not converged at t=30: TV distance %v", d3)
	}
}

// TestDistributionProperties: pi(t) is a distribution at every t, and
// t=0 returns the initial vector.
func TestDistributionProperties(t *testing.T) {
	chain := chainFor(t, multiSwitch())
	pi0, err := EmptyStart(chain)
	if err != nil {
		t.Fatal(err)
	}
	dists, err := Distributions(chain, pi0, []float64{0, 0.3, 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for ti, pi := range dists {
		sum := 0.0
		for _, p := range pi {
			if p < -1e-12 {
				t.Fatalf("t index %d: negative probability %v", ti, p)
			}
			sum += p
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Errorf("t index %d: probabilities sum to %v", ti, sum)
		}
	}
	for i := range pi0 {
		if !almostEqual(dists[0][i], pi0[i], 1e-12) {
			t.Errorf("t=0 distribution differs from initial at %d", i)
		}
	}
}

// TestLargeTime: uniformization stays stable at Poisson means far
// beyond e^-a underflow (a = Lambda t >> 745).
func TestLargeTime(t *testing.T) {
	sw := core.Switch{N1: 2, N2: 2, Classes: []core.Class{{A: 1, Alpha: 100, Mu: 100}}}
	chain := chainFor(t, sw)
	pi0, err := EmptyStart(chain)
	if err != nil {
		t.Fatal(err)
	}
	dists, err := Distributions(chain, pi0, []float64{50}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stat, err := chain.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	for i := range stat {
		if !almostEqual(dists[0][i], stat[i], 1e-6) {
			t.Errorf("state %d: pi(50) = %v, stationary %v", i, dists[0][i], stat[i])
		}
	}
}

// TestBlockingTrajectoryMonotoneFromEmpty: from a cold start the
// blocking probability rises monotonically to the stationary value.
func TestBlockingTrajectoryMonotoneFromEmpty(t *testing.T) {
	chain := chainFor(t, multiSwitch())
	pi0, err := EmptyStart(chain)
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{0, 0.25, 0.5, 1, 2, 4, 8, 16}
	traj, err := BlockingTrajectory(chain, pi0, 0, times, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if traj[0] != 0 {
		t.Errorf("cold-start blocking at t=0 is %v, want 0", traj[0])
	}
	// The rise is monotone up to a small late-time overshoot (multi-
	// class chains can approach the fixed point non-monotonically);
	// allow relative dips below 0.1%.
	for i := 1; i < len(traj); i++ {
		if traj[i] < traj[i-1]*(1-1e-3) {
			t.Errorf("blocking fell from %v to %v at t=%v", traj[i-1], traj[i], times[i])
		}
	}
	stat, err := chain.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	want := chain.Measures(stat).Blocking[0]
	if !almostEqual(traj[len(traj)-1], want, 1e-6) {
		t.Errorf("t=16 blocking %v, stationary %v", traj[len(traj)-1], want)
	}
}

// TestAgainstGillespieEnsemble: the uniformized E[k_r](t) matches an
// ensemble of direct stochastic simulations of the same chain.
func TestAgainstGillespieEnsemble(t *testing.T) {
	sw := core.Switch{N1: 3, N2: 3, Classes: []core.Class{{A: 1, Alpha: 0.4, Mu: 1}}}
	chain := chainFor(t, sw)
	pi0, err := EmptyStart(chain)
	if err != nil {
		t.Fatal(err)
	}
	const at = 1.5
	dists, err := Distributions(chain, pi0, []float64{at}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantE := chain.Measures(dists[0]).Concurrency[0]

	stream := rng.NewStream(77)
	const reps = 30000
	total := 0.0
	for rep := 0; rep < reps; rep++ {
		k := 0
		now := 0.0
		for {
			up := chain.Rate([]int{k}, 0, +1)
			down := chain.Rate([]int{k}, 0, -1)
			rate := up + down
			if rate == 0 {
				break
			}
			dt := stream.Exp(rate)
			if now+dt > at {
				break
			}
			now += dt
			if stream.Float64() < up/rate {
				k++
			} else {
				k--
			}
		}
		total += float64(k)
	}
	got := total / reps
	if math.Abs(got-wantE) > 0.02*math.Max(wantE, 0.1) {
		t.Errorf("ensemble E[k](%v) = %v, uniformization %v", at, got, wantE)
	}
}

// TestRelaxationTime: the cold-start settling time is on the order of
// a few holding times and shrinks as service speeds up.
func TestRelaxationTime(t *testing.T) {
	slow := core.Switch{N1: 2, N2: 2, Classes: []core.Class{{A: 1, Alpha: 0.1, Mu: 0.5}}}
	fast := core.Switch{N1: 2, N2: 2, Classes: []core.Class{{A: 1, Alpha: 0.4, Mu: 2}}}
	tSlow, err := RelaxationTime(chainFor(t, slow), 0.01, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tFast, err := RelaxationTime(chainFor(t, fast), 0.01, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tFast >= tSlow {
		t.Errorf("fast service relaxation %v should be below slow %v", tFast, tSlow)
	}
	if tSlow <= 0 || tSlow > 40 {
		t.Errorf("slow relaxation time %v implausible", tSlow)
	}
}

func TestValidation(t *testing.T) {
	chain := chainFor(t, multiSwitch())
	pi0, err := EmptyStart(chain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Distributions(chain, pi0[:2], []float64{1}, Options{}); err == nil {
		t.Error("short initial vector accepted")
	}
	if _, err := Distributions(chain, pi0, []float64{-1}, Options{}); err == nil {
		t.Error("negative time accepted")
	}
	bad := append([]float64(nil), pi0...)
	bad[0] = 0.5
	if _, err := Distributions(chain, bad, []float64{1}, Options{}); err == nil {
		t.Error("unnormalized initial vector accepted")
	}
	if _, err := BlockingTrajectory(chain, pi0, 9, []float64{1}, Options{}); err == nil {
		t.Error("bad class accepted")
	}
	if _, err := RelaxationTime(chain, 0, 10, Options{}); err == nil {
		t.Error("frac = 0 accepted")
	}
	if _, err := RelaxationTime(chain, 0.01, 1e-9, Options{}); err == nil {
		t.Error("unreachable tMax accepted")
	}
}

// TestLoadStep: start from the stationary state under a light load,
// triple the load at t = 0, and watch blocking relax monotonically
// upward to the new stationary value.
func TestLoadStep(t *testing.T) {
	light := core.Switch{N1: 3, N2: 3, Classes: []core.Class{{A: 1, Alpha: 0.1, Mu: 1}}}
	heavy := core.Switch{N1: 3, N2: 3, Classes: []core.Class{{A: 1, Alpha: 0.3, Mu: 1}}}
	cLight := chainFor(t, light)
	cHeavy := chainFor(t, heavy)
	pi0, err := StationaryStart(cLight, cHeavy)
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{0, 0.5, 1, 2, 8}
	traj, err := BlockingTrajectory(cHeavy, pi0, 0, times, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// t=0 blocking is the light-load stationary view of the heavy
	// chain's acceptance geometry — the light stationary blocking.
	lightStat, err := cLight.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	wantStart := cLight.Measures(lightStat).Blocking[0]
	if math.Abs(traj[0]-wantStart) > 1e-9 {
		t.Errorf("t=0 blocking %v, want light stationary %v", traj[0], wantStart)
	}
	heavyStat, err := cHeavy.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	wantEnd := cHeavy.Measures(heavyStat).Blocking[0]
	if math.Abs(traj[len(traj)-1]-wantEnd) > 1e-6 {
		t.Errorf("t=8 blocking %v, want heavy stationary %v", traj[len(traj)-1], wantEnd)
	}
	for i := 1; i < len(traj); i++ {
		if traj[i] < traj[i-1]-1e-9 {
			t.Errorf("load step blocking fell from %v to %v", traj[i-1], traj[i])
		}
	}
}

// TestStationaryStartRejectsMismatchedSpaces.
func TestStationaryStartRejectsMismatchedSpaces(t *testing.T) {
	a := chainFor(t, core.Switch{N1: 3, N2: 3, Classes: []core.Class{{A: 1, Alpha: 0.1, Mu: 1}}})
	b := chainFor(t, core.Switch{N1: 4, N2: 4, Classes: []core.Class{{A: 1, Alpha: 0.1, Mu: 1}}})
	if _, err := StationaryStart(a, b); err == nil {
		t.Error("mismatched state spaces accepted")
	}
}
