package scenario

import (
	"fmt"
	"sync"

	"xbar/internal/core"
	"xbar/internal/grid"
	"xbar/internal/parallel"
)

// Options configures an Engine.
type Options struct {
	// Grid configures the embedded grid.Engine that serves every
	// product-form solve an adapter needs (the overflow Wilkinson fits,
	// the retrial cleared anchor): scenario points join the same
	// canonical-key fill groups and memo as /v1/grid points.
	Grid grid.Options
	// Limits bounds admissible specs; zero fields take DefaultLimits.
	Limits Limits
	// NoMemo disables the scenario-level result memo. Evaluation still
	// routes through the (memoizing) grid engine; a caller with its own
	// result cache (the xbard endpoint) sets this to avoid caching
	// twice.
	NoMemo bool
	// Workers bounds EvaluateBatch's parallelism (0 = GOMAXPROCS).
	Workers int
}

// Stats is the engine's lifetime accounting.
type Stats struct {
	// Evaluations counts adapter runs; MemoHits counts Evaluate calls
	// answered from the scenario memo.
	Evaluations, MemoHits int
	// Grid is the embedded grid engine's accounting.
	Grid grid.Stats
}

// EvalError wraps a failure inside a legacy evaluator for a spec that
// passed validation — a semantically unevaluable scenario (HTTP 422),
// not a malformed one.
type EvalError struct {
	Discipline string
	Err        error
}

func (e *EvalError) Error() string {
	return fmt.Sprintf("scenario %q: %v", e.Discipline, e.Err)
}

func (e *EvalError) Unwrap() error { return e.Err }

// maxMemoEntries bounds the scenario memo; at the cap the memo is
// flushed wholesale (epoch flush, the grid.Engine policy) rather than
// tracking recency.
const maxMemoEntries = 1 << 14

// maxFreeSlices bounds the recycled measure-slice pool.
const maxFreeSlices = 256

// Engine evaluates scenario specs with deduplication and memoization.
// An Engine is safe for concurrent use.
type Engine struct {
	opt  Options
	lim  Limits
	grid *grid.Engine

	mu    sync.Mutex
	memo  map[string]*Result
	free  [][]Measure
	stats Stats
}

// New builds an Engine.
func New(opt Options) *Engine {
	return &Engine{
		opt:  opt,
		lim:  opt.Limits.withDefaults(),
		grid: grid.New(opt.Grid),
		memo: make(map[string]*Result),
	}
}

// Evaluate validates the spec and computes its measures, serving
// repeats of the same canonical key from the memo. The returned Result
// is the caller's to keep; recycle it with PutResult when done.
func (s *Spec) evaluateOn(e *Engine) (*Result, error) {
	if err := s.Validate(e.lim); err != nil {
		return nil, err
	}
	d := disciplines[s.Discipline]
	key := s.Key()
	if !e.opt.NoMemo {
		e.mu.Lock()
		if full, ok := e.memo[key]; ok {
			e.stats.MemoHits++
			e.mu.Unlock()
			return e.filter(full, s)
		}
		e.mu.Unlock()
	}
	ms, err := d.eval(e, s)
	if err != nil {
		return nil, &EvalError{Discipline: s.Discipline, Err: err}
	}
	full := &Result{Discipline: s.Discipline, Measures: ms}
	e.mu.Lock()
	e.stats.Evaluations++
	if !e.opt.NoMemo {
		if len(e.memo) >= maxMemoEntries {
			e.memo = make(map[string]*Result)
		}
		e.memo[key] = full
	}
	e.mu.Unlock()
	return e.filter(full, s)
}

// Evaluate is the method form of the common entry point.
func (e *Engine) Evaluate(s *Spec) (*Result, error) { return s.evaluateOn(e) }

// EvaluateBatch evaluates many specs concurrently, deduplicating equal
// canonical keys so each unique scenario runs once. Results and errors
// are positional: exactly one of results[i], errs[i] is non-nil.
func (e *Engine) EvaluateBatch(specs []*Spec) (results []*Result, errs []error) {
	results = make([]*Result, len(specs))
	errs = make([]error, len(specs))
	// Claim one evaluation slot per distinct key; duplicates wait for
	// the winner and share its memoized outcome (or re-evaluate under
	// NoMemo — correct, just not deduplicated).
	leader := make(map[string]int, len(specs))
	order := make([]int, 0, len(specs))
	followers := make(map[int][]int)
	for i, s := range specs {
		if s == nil {
			errs[i] = fmt.Errorf("scenario: nil spec")
			continue
		}
		if err := s.Validate(e.lim); err != nil {
			errs[i] = err
			continue
		}
		key := s.Key()
		if j, ok := leader[key]; ok {
			followers[j] = append(followers[j], i)
			continue
		}
		leader[key] = i
		order = append(order, i)
	}
	// Each leader evaluates in parallel; the per-item error lands in
	// errs, so the joined return of ForEach is redundant here.
	_ = parallel.ForEach(e.opt.Workers, order, func(_ int, i int) error {
		results[i], errs[i] = e.Evaluate(specs[i])
		return nil
	})
	for j, dup := range followers {
		for _, i := range dup {
			if errs[j] != nil {
				errs[i] = errs[j]
				continue
			}
			// Followers may filter differently, so re-derive from the
			// leader's full measure set via the memo-backed Evaluate
			// (a hit unless NoMemo).
			results[i], errs[i] = e.Evaluate(specs[i])
		}
	}
	return results, errs
}

// Stats returns a snapshot of the engine's accounting.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	st := e.stats
	e.mu.Unlock()
	st.Grid = e.grid.Stats()
	return st
}

// PutResult recycles a Result obtained from Evaluate: its measure
// slice returns to the engine's pool for the next evaluation's clone.
// The caller must not touch r afterwards.
//
//lint:pooled
func (e *Engine) PutResult(r *Result) {
	if r == nil || cap(r.Measures) == 0 {
		return
	}
	ms := r.Measures[:0]
	r.Measures = nil
	e.mu.Lock()
	if len(e.free) < maxFreeSlices {
		e.free = append(e.free, ms)
	}
	e.mu.Unlock()
}

// getMeasures pops a pooled slice with capacity >= n, or allocates.
func (e *Engine) getMeasures(n int) []Measure {
	e.mu.Lock()
	for i := len(e.free) - 1; i >= 0; i-- {
		if cap(e.free[i]) >= n {
			ms := e.free[i]
			e.free[i] = e.free[len(e.free)-1]
			e.free = e.free[:len(e.free)-1]
			e.mu.Unlock()
			return ms[:0]
		}
	}
	e.mu.Unlock()
	return make([]Measure, 0, n)
}

// filter clones the memoized full result through the spec's Measures
// selection (identity when empty). The clone draws on the recycled
// pool; unknown measure names are an InvalidError, reported only now
// because the discipline's measure set is evaluation-dependent.
func (e *Engine) filter(full *Result, s *Spec) (*Result, error) {
	out := &Result{Discipline: full.Discipline}
	if len(s.Measures) == 0 {
		out.Measures = append(e.getMeasures(len(full.Measures)), full.Measures...)
		return out, nil
	}
	ms := e.getMeasures(len(s.Measures))
	var fe fieldErrs
	for i, name := range s.Measures {
		m, ok := full.Measure(name)
		if !ok {
			fe.addf(fmt.Sprintf("measures[%d]", i), "discipline %q has no measure %q", s.Discipline, name)
			continue
		}
		ms = append(ms, m)
	}
	if err := fe.err(); err != nil {
		out.Measures = ms
		e.PutResult(out)
		return nil, err
	}
	out.Measures = ms
	return out, nil
}

// solve routes one product-form switch through the embedded grid
// engine; solveBatch routes several in one call so they share fill
// groups.
func (e *Engine) solve(sw core.Switch) (*core.Result, error) {
	res, err := e.grid.Solve([]core.Switch{sw})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// std is the process-wide engine behind the package-level Evaluate —
// the zero-setup entry point mirroring the legacy packages' free
// functions.
var (
	stdOnce sync.Once
	std     *Engine
)

// Evaluate runs one spec on a lazily built process-wide Engine with
// default options. Callers wanting limits, memo control or stats build
// their own Engine with New.
func Evaluate(s *Spec) (*Result, error) {
	stdOnce.Do(func() { std = New(Options{}) })
	return std.Evaluate(s)
}
