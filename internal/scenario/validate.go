package scenario

import (
	"fmt"
	"math"

	"xbar/internal/floats"
)

// Limits bounds what Validate will admit for evaluation. The zero
// value of any field selects the corresponding DefaultLimits entry.
// Violations are LimitError (HTTP 413), distinct from domain errors
// (InvalidError, 400): a million-port switch is a well-formed spec the
// server declines to evaluate, not a malformed one.
type Limits struct {
	// MaxDim caps every topology dimension (n1, n2, m, n, r, l, w, c,
	// secondary_n).
	MaxDim int
	// MaxClasses caps the traffic-class list.
	MaxClasses int
	// MaxSlots caps slotted simulation horizons; the cell budget
	// dimension*slots is additionally capped by MaxEvents.
	MaxSlots int
	// MaxEvents caps the expected event (or slot-cell) budget of one
	// simulation, the knob that keeps a fuzzer or an abusive client
	// from buying unbounded CPU with a tiny request.
	MaxEvents float64
	// MaxStates caps the transient discipline's CTMC state-space bound.
	// Uniformization holds a dense |S| x |S| transition matrix, so the
	// cap is memory, not time: 2048 states is a 32 MB matrix.
	MaxStates int
	// MaxTimes caps the transient time list.
	MaxTimes int
}

// DefaultLimits are the package defaults, sized so the costliest
// admissible spec evaluates in well under a second.
var DefaultLimits = Limits{
	MaxDim:     4096,
	MaxClasses: 64,
	MaxSlots:   1 << 20,
	MaxEvents:  5e6,
	MaxStates:  2048,
	MaxTimes:   64,
}

// maxMagnitude and minPositive bound every rate-like parameter. The
// window is far wider than any physical operating point; outside it
// the downstream numerics (rho = alpha/mu, alpha + beta*k) can
// overflow float64, and the scale package treats non-finite
// intermediates as programmer error.
const (
	maxMagnitude = 1e12
	minPositive  = 1e-12
)

func (l Limits) withDefaults() Limits {
	if l.MaxDim == 0 {
		l.MaxDim = DefaultLimits.MaxDim
	}
	if l.MaxClasses == 0 {
		l.MaxClasses = DefaultLimits.MaxClasses
	}
	if l.MaxSlots == 0 {
		l.MaxSlots = DefaultLimits.MaxSlots
	}
	if l.MaxEvents == 0 { //lint:allow floatcmp zero value of Limits.MaxEvents selects the default (Go zero-value idiom)
		l.MaxEvents = DefaultLimits.MaxEvents
	}
	if l.MaxStates == 0 {
		l.MaxStates = DefaultLimits.MaxStates
	}
	if l.MaxTimes == 0 {
		l.MaxTimes = DefaultLimits.MaxTimes
	}
	return l
}

// fieldErrs accumulates indexed validation failures.
type fieldErrs struct {
	fields []FieldError
}

func (fe *fieldErrs) addf(field, format string, args ...any) {
	fe.fields = append(fe.fields, FieldError{Field: field, Msg: fmt.Sprintf(format, args...)})
}

// err folds the accumulated failures into an InvalidError (nil when
// none).
func (fe *fieldErrs) err() error {
	if len(fe.fields) == 0 {
		return nil
	}
	return &InvalidError{Fields: fe.fields}
}

// validator is one discipline's structural validation. It reports
// domain failures into fe and returns a LimitError for size failures
// (checked only once the spec is structurally sound, so a negative
// dimension is a 400, not a 413).
type validator func(s *Spec, lim Limits, fe *fieldErrs) *LimitError

// Validate checks the spec strictly against the discipline's schema:
// unknown disciplines are UnknownDisciplineError, domain violations
// (including any field set that the discipline does not read)
// accumulate into an InvalidError with one entry per offending field,
// and admissible-but-oversized specs are LimitError.
func (s *Spec) Validate(lim Limits) error {
	d, ok := disciplines[s.Discipline]
	if !ok {
		return &UnknownDisciplineError{Discipline: s.Discipline}
	}
	lim = lim.withDefaults()
	var fe fieldErrs
	s.validateCommon(&fe)
	limErr := d.validate(s, lim, &fe)
	if err := fe.err(); err != nil {
		return err
	}
	if limErr != nil {
		return limErr
	}
	return nil
}

// validateCommon rejects non-finite floats and malformed measure
// filters — checks every discipline shares.
func (s *Spec) validateCommon(fe *fieldErrs) {
	p := s.Params
	for _, f := range [...]struct {
		name string
		v    float64
	}{
		{"params.load", p.Load}, {"params.lambda", p.Lambda}, {"params.mu", p.Mu},
		{"params.rate", p.Rate}, {"params.cross_rate", p.CrossRate},
		{"params.hot_fraction", p.HotFraction}, {"params.retry_rate", p.RetryRate},
		{"sim.warmup", s.Sim.Warmup}, {"sim.horizon", s.Sim.Horizon},
	} {
		if !finite(f.v) {
			fe.addf(f.name, "must be finite, got %v", f.v)
		}
	}
	for i, t := range p.Times {
		if !finite(t) {
			fe.addf(fmt.Sprintf("params.times[%d]", i), "must be finite, got %v", t)
		}
	}
	for i, c := range s.Classes {
		if !finite(c.Alpha) || !finite(c.Beta) || !finite(c.Mu) {
			fe.addf(fmt.Sprintf("classes[%d]", i), "alpha, beta and mu must be finite")
		}
	}
	seen := make(map[string]bool, len(s.Measures))
	for i, m := range s.Measures {
		switch {
		case m == "":
			fe.addf(fmt.Sprintf("measures[%d]", i), "empty measure name")
		case seen[m]:
			fe.addf(fmt.Sprintf("measures[%d]", i), "duplicate measure %q", m)
		}
		seen[m] = true
	}
}

// topologyFields and the companion tables drive the strictness sweep:
// every field a discipline does not list as used must be zero, so that
// the canonical Key is exact and a typo'd field cannot silently
// change nothing.
var topologyFields = [...]struct {
	name string
	get  func(*Topology) int
}{
	{"n1", func(t *Topology) int { return t.N1 }},
	{"n2", func(t *Topology) int { return t.N2 }},
	{"m", func(t *Topology) int { return t.M }},
	{"n", func(t *Topology) int { return t.N }},
	{"r", func(t *Topology) int { return t.R }},
	{"l", func(t *Topology) int { return t.L }},
	{"w", func(t *Topology) int { return t.W }},
	{"c", func(t *Topology) int { return t.C }},
}

var paramFloatFields = [...]struct {
	name string
	get  func(*Params) float64
}{
	{"load", func(p *Params) float64 { return p.Load }},
	{"lambda", func(p *Params) float64 { return p.Lambda }},
	{"mu", func(p *Params) float64 { return p.Mu }},
	{"rate", func(p *Params) float64 { return p.Rate }},
	{"cross_rate", func(p *Params) float64 { return p.CrossRate }},
	{"hot_fraction", func(p *Params) float64 { return p.HotFraction }},
	{"retry_rate", func(p *Params) float64 { return p.RetryRate }},
}

var paramIntFields = [...]struct {
	name string
	get  func(*Params) int
}{
	{"max_attempts", func(p *Params) int { return p.MaxAttempts }},
	{"secondary_n", func(p *Params) int { return p.SecondaryN }},
	{"class", func(p *Params) int { return p.Class }},
}

var simFields = [...]struct {
	name string
	zero func(*Sim) bool
}{
	{"seed", func(s *Sim) bool { return s.Seed == 0 }},
	{"warmup", func(s *Sim) bool { return floats.Zero(s.Warmup) }},
	{"horizon", func(s *Sim) bool { return floats.Zero(s.Horizon) }},
	{"batches", func(s *Sim) bool { return s.Batches == 0 }},
	{"slots", func(s *Sim) bool { return s.Slots == 0 }},
	{"queue_cap", func(s *Sim) bool { return s.QueueCap == 0 }},
}

// usage declares which fields one discipline reads. Field names match
// the JSON schema.
type usage struct {
	topology []string
	params   []string
	sim      []string
	classes  bool
	times    bool
	policy   bool
	conv     bool
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// rejectUnused reports every set field outside the discipline's usage
// declaration.
func rejectUnused(s *Spec, u usage, fe *fieldErrs) {
	for _, f := range topologyFields {
		if !contains(u.topology, f.name) && f.get(&s.Topology) != 0 {
			fe.addf("topology."+f.name, "not read by discipline %q", s.Discipline)
		}
	}
	for _, f := range paramFloatFields {
		if !contains(u.params, f.name) && !floats.Zero(f.get(&s.Params)) {
			fe.addf("params."+f.name, "not read by discipline %q", s.Discipline)
		}
	}
	for _, f := range paramIntFields {
		if !contains(u.params, f.name) && f.get(&s.Params) != 0 {
			fe.addf("params."+f.name, "not read by discipline %q", s.Discipline)
		}
	}
	for _, f := range simFields {
		if !contains(u.sim, f.name) && !f.zero(&s.Sim) {
			fe.addf("sim."+f.name, "not read by discipline %q", s.Discipline)
		}
	}
	if !u.classes && len(s.Classes) > 0 {
		fe.addf("classes", "not read by discipline %q", s.Discipline)
	}
	if !u.times && len(s.Params.Times) > 0 {
		fe.addf("params.times", "not read by discipline %q", s.Discipline)
	}
	if !u.policy && s.Params.Policy != "" {
		fe.addf("params.policy", "not read by discipline %q", s.Discipline)
	}
	if !u.conv && s.Params.Converters {
		fe.addf("params.converters", "not read by discipline %q", s.Discipline)
	}
}

// checkDim validates one required topology dimension and returns the
// limit violation, if any.
func checkDim(field string, v, min, max int, fe *fieldErrs) *LimitError {
	if v < min {
		fe.addf(field, "%d, must be >= %d", v, min)
		return nil
	}
	if v > max {
		return &LimitError{Field: field, Msg: fmt.Sprintf("%d exceeds the limit %d", v, max)}
	}
	return nil
}

// firstLim keeps the first limit violation of a sequence.
func firstLim(errs ...*LimitError) *LimitError {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// checkUnitLoad validates a [0, 1] load parameter.
func checkUnitLoad(field string, v float64, fe *fieldErrs) {
	if v < 0 || v > 1 {
		fe.addf(field, "%v outside [0,1]", v)
	}
}

// checkPositive validates a strictly positive rate parameter within
// the supported magnitude window.
func checkPositive(field string, v float64, fe *fieldErrs) {
	if v <= 0 {
		fe.addf(field, "%v, must be > 0", v)
		return
	}
	if v < minPositive || v > maxMagnitude {
		fe.addf(field, "%v outside the supported magnitude window [%.0e, %.0e]", v, minPositive, maxMagnitude)
	}
}

// checkNonNegative validates a rate that may be zero (cross traffic,
// warmup) but must stay within the magnitude window.
func checkNonNegative(field string, v float64, fe *fieldErrs) {
	if v < 0 {
		fe.addf(field, "%v, must be >= 0", v)
		return
	}
	if v > maxMagnitude {
		fe.addf(field, "%v outside the supported magnitude window [0, %.0e]", v, maxMagnitude)
	}
}

// checkEventSim validates the event-driven simulation block shared by
// clos, wdm, overflow, retrial and hotspot (warmup, horizon, batches)
// and the expected event budget rate*(warmup+horizon) against
// lim.MaxEvents. required marks disciplines that are pure simulations.
func checkEventSim(s *Spec, lim Limits, rate float64, required bool, fe *fieldErrs) *LimitError {
	sim := s.Sim
	checkNonNegative("sim.warmup", sim.Warmup, fe)
	if sim.Horizon < 0 || sim.Horizon > maxMagnitude {
		fe.addf("sim.horizon", "%v outside [0, %.0e]", sim.Horizon, maxMagnitude)
	}
	if required && sim.Horizon <= 0 {
		fe.addf("sim.horizon", "discipline %q is a simulation; horizon must be > 0", s.Discipline)
	}
	if sim.Horizon > 0 && (sim.Batches == 1 || sim.Batches < 0) {
		fe.addf("sim.batches", "%d, need 0 (default 20) or >= 2", sim.Batches)
	}
	if sim.Horizon <= 0 {
		return nil
	}
	// Expected events: each arrival schedules at most a few follow-up
	// events, so 4x the arrival count is a generous budget envelope.
	if budget := 4 * rate * (sim.Warmup + sim.Horizon); budget > lim.MaxEvents {
		return &LimitError{Field: "sim.horizon", Msg: fmt.Sprintf(
			"expected event budget %.3g exceeds the limit %.3g", budget, lim.MaxEvents)}
	}
	return nil
}

// checkSlotSim validates a slotted simulation block: slots (>= 20 when
// present, the batch floor of the slotted simulators) and the
// dimension*slots cell budget.
func checkSlotSim(lim Limits, dim, slots int, required bool, fe *fieldErrs) *LimitError {
	if slots < 0 {
		fe.addf("sim.slots", "%d, must be >= 0", slots)
		return nil
	}
	if required && slots == 0 {
		fe.addf("sim.slots", "this discipline is a simulation; slots must be >= 20")
		return nil
	}
	if slots > 0 && slots < 20 {
		fe.addf("sim.slots", "%d, need at least 20 (one per batch)", slots)
		return nil
	}
	if slots > lim.MaxSlots {
		return &LimitError{Field: "sim.slots", Msg: fmt.Sprintf("%d exceeds the limit %d", slots, lim.MaxSlots)}
	}
	if budget := float64(dim) * float64(slots); budget > lim.MaxEvents {
		return &LimitError{Field: "sim.slots", Msg: fmt.Sprintf(
			"cell budget %.3g exceeds the limit %.3g", budget, lim.MaxEvents)}
	}
	return nil
}

// checkClasses validates the BPP class list against the constraints
// every class-bearing discipline shares (a >= 1, alpha > 0, mu > 0,
// Pascal convergence beta/mu < 1).
func checkClasses(s *Spec, lim Limits, fe *fieldErrs) *LimitError {
	if len(s.Classes) == 0 {
		fe.addf("classes", "discipline %q needs at least one traffic class", s.Discipline)
		return nil
	}
	if len(s.Classes) > lim.MaxClasses {
		return &LimitError{Field: "classes", Msg: fmt.Sprintf("%d classes exceed the limit %d", len(s.Classes), lim.MaxClasses)}
	}
	for i, c := range s.Classes {
		if c.A < 1 {
			fe.addf(fmt.Sprintf("classes[%d].a", i), "%d, must be >= 1", c.A)
		}
		checkPositive(fmt.Sprintf("classes[%d].alpha", i), c.Alpha, fe)
		checkPositive(fmt.Sprintf("classes[%d].mu", i), c.Mu, fe)
		if math.Abs(c.Beta) > maxMagnitude {
			fe.addf(fmt.Sprintf("classes[%d].beta", i), "%v outside the supported magnitude window", c.Beta)
		}
		if c.Mu > 0 && c.Beta/c.Mu >= 1 {
			fe.addf(fmt.Sprintf("classes[%d].beta", i), "beta/mu = %v >= 1 (Pascal divergence)", c.Beta/c.Mu)
		}
	}
	return nil
}

// checkTimes validates the transient time list.
func checkTimes(s *Spec, lim Limits, fe *fieldErrs) *LimitError {
	if len(s.Params.Times) == 0 {
		fe.addf("params.times", "discipline %q needs at least one evaluation time", s.Discipline)
		return nil
	}
	for i, t := range s.Params.Times {
		checkNonNegative(fmt.Sprintf("params.times[%d]", i), t, fe)
	}
	if len(s.Params.Times) > lim.MaxTimes {
		return &LimitError{Field: "params.times", Msg: fmt.Sprintf("%d times exceed the limit %d", len(s.Params.Times), lim.MaxTimes)}
	}
	return nil
}

// stateBound is the rectangle bound on the transient CTMC state count:
// prod_r (minN/a_r + 1), capped to avoid overflow.
func stateBound(minN int, classes []Class) float64 {
	bound := 1.0
	for _, c := range classes {
		if c.A < 1 {
			continue
		}
		bound *= float64(minN/c.A + 1)
		if math.IsInf(bound, 1) {
			return bound
		}
	}
	return bound
}
