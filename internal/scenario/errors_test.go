package scenario_test

import (
	"errors"
	"strings"
	"testing"

	"xbar/internal/scenario"
)

func TestErrorStrings(t *testing.T) {
	inv := &scenario.InvalidError{Fields: []scenario.FieldError{
		{Field: "params.load", Msg: "1.5 outside [0,1]"},
		{Field: "sim.seed", Msg: "set without an active simulation"},
	}}
	for _, want := range []string{"invalid scenario spec: ", "params.load: 1.5", "; sim.seed: set"} {
		if !strings.Contains(inv.Error(), want) {
			t.Errorf("InvalidError.Error() = %q, want substring %q", inv.Error(), want)
		}
	}

	lim := &scenario.LimitError{Field: "topology.n1", Msg: "9000 exceeds the limit 64"}
	if got := lim.Error(); !strings.Contains(got, "scenario too large: topology.n1: 9000") {
		t.Errorf("LimitError.Error() = %q", got)
	}

	sentinel := errors.New("secondary fit diverged")
	ev := &scenario.EvalError{Discipline: "overflow", Err: sentinel}
	if got := ev.Error(); !strings.Contains(got, `scenario "overflow"`) || !strings.Contains(got, sentinel.Error()) {
		t.Errorf("EvalError.Error() = %q", got)
	}
	if !errors.Is(ev, sentinel) {
		t.Error("EvalError does not unwrap to its cause")
	}
}

// TestValidateFieldDiagnostics drives Validate through the domain
// checks (rate signs, magnitude windows, slot floors, class and time
// lists, policy names, sim extras) and asserts each offending field is
// reported by its JSON path.
func TestValidateFieldDiagnostics(t *testing.T) {
	cases := []struct {
		name   string
		spec   scenario.Spec
		fields []string
	}{
		{
			name: "rate nonpositive",
			spec: scenario.Spec{Discipline: "wdm",
				Topology: scenario.Topology{L: 2, W: 4},
				Params:   scenario.Params{Rate: -1, Mu: 1}},
			fields: []string{"params.rate"},
		},
		{
			name: "rate above magnitude window",
			spec: scenario.Spec{Discipline: "wdm",
				Topology: scenario.Topology{L: 2, W: 4},
				Params:   scenario.Params{Rate: 1e15, Mu: 1}},
			fields: []string{"params.rate"},
		},
		{
			name: "rate below magnitude window",
			spec: scenario.Spec{Discipline: "wdm",
				Topology: scenario.Topology{L: 2, W: 4},
				Params:   scenario.Params{Rate: 5e-14, Mu: 1}},
			fields: []string{"params.rate"},
		},
		{
			name: "cross rate negative",
			spec: scenario.Spec{Discipline: "wdm",
				Topology: scenario.Topology{L: 2, W: 4},
				Params:   scenario.Params{Rate: 1, CrossRate: -0.5, Mu: 1}},
			fields: []string{"params.cross_rate"},
		},
		{
			name: "cross rate above magnitude window",
			spec: scenario.Spec{Discipline: "wdm",
				Topology: scenario.Topology{L: 2, W: 4},
				Params:   scenario.Params{Rate: 1, CrossRate: 2e12, Mu: 1}},
			fields: []string{"params.cross_rate"},
		},
		{
			name: "warmup negative",
			spec: scenario.Spec{Discipline: "wdm",
				Topology: scenario.Topology{L: 2, W: 4},
				Params:   scenario.Params{Rate: 1, Mu: 1},
				Sim:      scenario.Sim{Warmup: -1, Horizon: 50}},
			fields: []string{"sim.warmup"},
		},
		{
			name: "single batch",
			spec: scenario.Spec{Discipline: "wdm",
				Topology: scenario.Topology{L: 2, W: 4},
				Params:   scenario.Params{Rate: 1, Mu: 1},
				Sim:      scenario.Sim{Horizon: 50, Batches: 1}},
			fields: []string{"sim.batches"},
		},
		{
			name: "negative slots",
			spec: scenario.Spec{Discipline: "slotted",
				Topology: scenario.Topology{N1: 4, N2: 4},
				Params:   scenario.Params{Load: 0.5},
				Sim:      scenario.Sim{Slots: -5}},
			fields: []string{"sim.slots"},
		},
		{
			name: "slots under the batch floor",
			spec: scenario.Spec{Discipline: "slotted",
				Topology: scenario.Topology{N1: 4, N2: 4},
				Params:   scenario.Params{Load: 0.5},
				Sim:      scenario.Sim{Slots: 10}},
			fields: []string{"sim.slots"},
		},
		{
			name: "inputq slots required",
			spec: scenario.Spec{Discipline: "inputq",
				Topology: scenario.Topology{N1: 4},
				Params:   scenario.Params{Load: 0.5}},
			fields: []string{"sim.slots"},
		},
		{
			name: "inputq bad policy and queue cap",
			spec: scenario.Spec{Discipline: "inputq",
				Topology: scenario.Topology{N1: 4},
				Params:   scenario.Params{Load: 0.5, Policy: "fifo"},
				Sim:      scenario.Sim{Slots: 100, QueueCap: -1}},
			fields: []string{"params.policy", "sim.queue_cap"},
		},
		{
			name: "link without classes",
			spec: scenario.Spec{Discipline: "link",
				Topology: scenario.Topology{C: 4}},
			fields: []string{"classes"},
		},
		{
			name: "link class out of domain",
			spec: scenario.Spec{Discipline: "link",
				Topology: scenario.Topology{C: 4},
				Classes:  []scenario.Class{{A: 0, Alpha: -1, Beta: 2e12, Mu: 1}}},
			fields: []string{"classes[0].a", "classes[0].alpha", "classes[0].beta"},
		},
		{
			name: "link pascal divergence",
			spec: scenario.Spec{Discipline: "link",
				Topology: scenario.Topology{C: 4},
				Classes:  []scenario.Class{{A: 1, Alpha: 1, Beta: 2, Mu: 1}}},
			fields: []string{"classes[0].beta"},
		},
		{
			name: "transient without times",
			spec: scenario.Spec{Discipline: "transient",
				Topology: scenario.Topology{N1: 2, N2: 2},
				Classes:  []scenario.Class{{A: 1, Alpha: 0.1, Mu: 1}}},
			fields: []string{"params.times"},
		},
		{
			name: "transient negative time",
			spec: scenario.Spec{Discipline: "transient",
				Topology: scenario.Topology{N1: 2, N2: 2},
				Classes:  []scenario.Class{{A: 1, Alpha: 0.1, Mu: 1}},
				Params:   scenario.Params{Times: []float64{-1}}},
			fields: []string{"params.times[0]"},
		},
		{
			name: "clos sim knobs without a simulation",
			spec: scenario.Spec{Discipline: "clos",
				Topology: scenario.Topology{M: 2, N: 2, R: 2},
				Params:   scenario.Params{Load: 0.5, Mu: 1, Policy: "first-fit"},
				Sim:      scenario.Sim{Seed: 1, Warmup: 2, Batches: 5}},
			fields: []string{"params.mu", "params.policy", "sim.seed", "sim.warmup", "sim.batches"},
		},
		{
			name: "clos unknown policy",
			spec: scenario.Spec{Discipline: "clos",
				Topology: scenario.Topology{M: 2, N: 2, R: 2},
				Params:   scenario.Params{Load: 0.5, Mu: 1, Policy: "bogus"},
				Sim:      scenario.Sim{Horizon: 50}},
			fields: []string{"params.policy"},
		},
		{
			name: "wdm sim knobs without a simulation",
			spec: scenario.Spec{Discipline: "wdm",
				Topology: scenario.Topology{L: 2, W: 4},
				Params:   scenario.Params{Rate: 1, Mu: 1, Policy: "random-fit", Converters: true}},
			fields: []string{"params.policy", "params.converters"},
		},
		{
			name: "retrial retry rate without retries",
			spec: scenario.Spec{Discipline: "retrial",
				Topology: scenario.Topology{N1: 2, N2: 2},
				Params:   scenario.Params{Lambda: 1, Mu: 1, RetryRate: 1},
				Sim:      scenario.Sim{Horizon: 50}},
			fields: []string{"params.retry_rate"},
		},
		{
			name: "retrial negative attempts",
			spec: scenario.Spec{Discipline: "retrial",
				Topology: scenario.Topology{N1: 2, N2: 2},
				Params:   scenario.Params{Lambda: 1, Mu: 1, MaxAttempts: -1},
				Sim:      scenario.Sim{Horizon: 50}},
			fields: []string{"params.max_attempts"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate(scenario.Limits{})
			var inv *scenario.InvalidError
			if !errors.As(err, &inv) {
				t.Fatalf("Validate = %v, want *InvalidError", err)
			}
			got := make(map[string]string, len(inv.Fields))
			for _, f := range inv.Fields {
				got[f.Field] = f.Msg
			}
			for _, field := range tc.fields {
				if msg, ok := got[field]; !ok {
					t.Errorf("missing diagnostic for %s (got %v)", field, inv.Fields)
				} else if msg == "" {
					t.Errorf("empty diagnostic for %s", field)
				}
			}
		})
	}
}

// TestValidateLimitDiagnostics exercises every LimitError source:
// slot caps, cell and event budgets, class and time list caps, and the
// transient state-space bound.
func TestValidateLimitDiagnostics(t *testing.T) {
	cases := []struct {
		name  string
		spec  scenario.Spec
		lim   scenario.Limits
		field string
	}{
		{
			name: "slots over cap",
			spec: scenario.Spec{Discipline: "slotted",
				Topology: scenario.Topology{N1: 2, N2: 2},
				Params:   scenario.Params{Load: 0.5},
				Sim:      scenario.Sim{Slots: 100}},
			lim:   scenario.Limits{MaxSlots: 64},
			field: "sim.slots",
		},
		{
			name: "cell budget over cap",
			spec: scenario.Spec{Discipline: "slotted",
				Topology: scenario.Topology{N1: 16, N2: 16},
				Params:   scenario.Params{Load: 0.5},
				Sim:      scenario.Sim{Slots: 20}},
			lim:   scenario.Limits{MaxEvents: 100},
			field: "sim.slots",
		},
		{
			name: "event budget over cap",
			spec: scenario.Spec{Discipline: "overflow",
				Topology: scenario.Topology{N1: 2},
				Params:   scenario.Params{Lambda: 1e6, Mu: 1, SecondaryN: 2},
				Sim:      scenario.Sim{Horizon: 1000}},
			field: "sim.horizon",
		},
		{
			name: "class list over cap",
			spec: scenario.Spec{Discipline: "link",
				Topology: scenario.Topology{C: 4},
				Classes: []scenario.Class{
					{A: 1, Alpha: 0.1, Mu: 1},
					{A: 2, Alpha: 0.2, Mu: 1}}},
			lim:   scenario.Limits{MaxClasses: 1},
			field: "classes",
		},
		{
			name: "time list over cap",
			spec: scenario.Spec{Discipline: "transient",
				Topology: scenario.Topology{N1: 2, N2: 2},
				Classes:  []scenario.Class{{A: 1, Alpha: 0.1, Mu: 1}},
				Params:   scenario.Params{Times: []float64{0, 1, 2}}},
			lim:   scenario.Limits{MaxTimes: 2},
			field: "params.times",
		},
		{
			name: "state bound over cap",
			spec: scenario.Spec{Discipline: "transient",
				Topology: scenario.Topology{N1: 16, N2: 16},
				Classes:  []scenario.Class{{A: 1, Alpha: 0.1, Mu: 1}},
				Params:   scenario.Params{Times: []float64{1}}},
			lim:   scenario.Limits{MaxStates: 8},
			field: "topology",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate(tc.lim)
			var le *scenario.LimitError
			if !errors.As(err, &le) {
				t.Fatalf("Validate = %v, want *LimitError", err)
			}
			if le.Field != tc.field {
				t.Errorf("LimitError.Field = %q, want %q", le.Field, tc.field)
			}
			if le.Msg == "" {
				t.Error("LimitError.Msg is empty")
			}
		})
	}
}

// TestValidatePolicyAliases accepts every documented policy alias.
func TestValidatePolicyAliases(t *testing.T) {
	cases := []struct {
		name string
		spec scenario.Spec
	}{
		{
			name: "clos first-fit",
			spec: scenario.Spec{Discipline: "clos",
				Topology: scenario.Topology{M: 2, N: 2, R: 2},
				Params:   scenario.Params{Load: 0.5, Mu: 1, Policy: "first-fit"},
				Sim:      scenario.Sim{Warmup: 5, Horizon: 50}},
		},
		{
			name: "clos random-try",
			spec: scenario.Spec{Discipline: "clos",
				Topology: scenario.Topology{M: 2, N: 2, R: 2},
				Params:   scenario.Params{Load: 0.5, Mu: 1, Policy: "random-try"},
				Sim:      scenario.Sim{Horizon: 50}},
		},
		{
			name: "wdm random-fit",
			spec: scenario.Spec{Discipline: "wdm",
				Topology: scenario.Topology{L: 2, W: 4},
				Params:   scenario.Params{Rate: 1, Mu: 1, Policy: "random-fit"},
				Sim:      scenario.Sim{Horizon: 50}},
		},
		{
			name: "inputq output-queued",
			spec: scenario.Spec{Discipline: "inputq",
				Topology: scenario.Topology{N1: 4},
				Params:   scenario.Params{Load: 0.5, Policy: "output-queued"},
				Sim:      scenario.Sim{Slots: 100, QueueCap: 4}},
		},
		{
			name: "retrial with orbit",
			spec: scenario.Spec{Discipline: "retrial",
				Topology: scenario.Topology{N1: 2, N2: 2},
				Params:   scenario.Params{Lambda: 1, Mu: 1, RetryRate: 1, MaxAttempts: 3},
				Sim:      scenario.Sim{Horizon: 50}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.spec.Validate(scenario.Limits{}); err != nil {
				t.Fatalf("Validate = %v, want nil", err)
			}
		})
	}
}
