package scenario

import (
	"fmt"
	"sort"

	"xbar/internal/clos"
	"xbar/internal/core"
	"xbar/internal/dist"
	"xbar/internal/floats"
	"xbar/internal/hotspot"
	"xbar/internal/inputq"
	"xbar/internal/link"
	"xbar/internal/minnet"
	"xbar/internal/overflow"
	"xbar/internal/retrial"
	"xbar/internal/slotted"
	"xbar/internal/statespace"
	"xbar/internal/stats"
	"xbar/internal/transient"
	"xbar/internal/wdm"
)

// discipline is one adapter: strict validation plus evaluation against
// the legacy package. eval may assume the spec validated; it returns
// the full measure set in the discipline's documented order.
type discipline struct {
	validate validator
	eval     func(e *Engine, s *Spec) ([]Measure, error)
}

// disciplines is the adapter registry — one entry per legacy scenario
// package. docs/SCENARIOS.md carries the table in prose.
var disciplines = map[string]discipline{
	"slotted":   {validateSlotted, evalSlotted},
	"clos":      {validateClos, evalClos},
	"wdm":       {validateWDM, evalWDM},
	"overflow":  {validateOverflow, evalOverflow},
	"retrial":   {validateRetrial, evalRetrial},
	"hotspot":   {validateHotspot, evalHotspot},
	"inputq":    {validateInputq, evalInputq},
	"minnet":    {validateMinnet, evalMinnet},
	"link":      {validateLink, evalLink},
	"transient": {validateTransient, evalTransient},
}

// Disciplines returns the registered discipline names, sorted.
func Disciplines() []string {
	names := make([]string, 0, len(disciplines))
	for name := range disciplines {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// scalar and ci build the two measure flavours.
func scalar(name string, v float64) Measure { return Measure{Name: name, Value: v} }

func ci(name string, c stats.CI) Measure {
	return Measure{Name: name, Value: c.Mean, HalfWidth: c.HalfWidth}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// rejectSimExtras flags the generic simulation fields when the spec
// carries no active simulation — they would otherwise fragment the
// canonical key without changing the result.
func rejectSimExtras(s *Spec, fe *fieldErrs) {
	if s.Sim.Seed != 0 {
		fe.addf("sim.seed", "set without an active simulation")
	}
	if !floats.Zero(s.Sim.Warmup) {
		fe.addf("sim.warmup", "set without an active simulation")
	}
	if s.Sim.Batches != 0 {
		fe.addf("sim.batches", "set without an active simulation")
	}
}

// closPolicy, wdmAssignment and inputqPolicy map the spec's policy
// string onto the legacy enums; empty selects each package's default.
func closPolicy(s string) (clos.Policy, bool) {
	switch s {
	case "", "random-available":
		return clos.RandomAvailable, true
	case "first-fit":
		return clos.FirstFit, true
	case "random-try":
		return clos.RandomTry, true
	}
	return 0, false
}

func wdmAssignment(s string) (wdm.Assignment, bool) {
	switch s {
	case "", "first-fit":
		return wdm.FirstFit, true
	case "random-fit":
		return wdm.RandomFit, true
	}
	return 0, false
}

func inputqPolicy(s string) (inputq.Discipline, bool) {
	switch s {
	case "", "input-queued":
		return inputq.InputQueued, true
	case "output-queued":
		return inputq.OutputQueued, true
	}
	return 0, false
}

// ---------------------------------------------------------------- slotted

func validateSlotted(s *Spec, lim Limits, fe *fieldErrs) *LimitError {
	rejectUnused(s, usage{
		topology: []string{"n1", "n2"},
		params:   []string{"load"},
		sim:      []string{"seed", "slots"},
	}, fe)
	lm := firstLim(
		checkDim("topology.n1", s.Topology.N1, 1, lim.MaxDim, fe),
		checkDim("topology.n2", s.Topology.N2, 1, lim.MaxDim, fe))
	checkUnitLoad("params.load", s.Params.Load, fe)
	lm = firstLim(lm, checkSlotSim(lim, s.Topology.N1+s.Topology.N2, s.Sim.Slots, false, fe))
	if s.Sim.Slots == 0 && s.Sim.Seed != 0 {
		fe.addf("sim.seed", "set without sim.slots")
	}
	return lm
}

func evalSlotted(_ *Engine, s *Spec) ([]Measure, error) {
	n, m, p := s.Topology.N1, s.Topology.N2, s.Params.Load
	thr, err := slotted.Throughput(n, m, p)
	if err != nil {
		return nil, err
	}
	acc, err := slotted.AcceptanceProbability(n, m, p)
	if err != nil {
		return nil, err
	}
	ms := []Measure{scalar("throughput", thr), scalar("acceptance", acc)}
	if s.Sim.Slots > 0 {
		r, err := slotted.Simulate(n, m, p, s.Sim.Slots, s.Sim.Seed)
		if err != nil {
			return nil, err
		}
		ms = append(ms,
			ci("sim_per_output", r.PerOutput),
			ci("sim_acceptance", r.Acceptance),
			scalar("sim_offered", float64(r.Offered)))
	}
	return ms, nil
}

// ------------------------------------------------------------------- clos

func validateClos(s *Spec, lim Limits, fe *fieldErrs) *LimitError {
	rejectUnused(s, usage{
		topology: []string{"m", "n", "r"},
		params:   []string{"load", "mu"},
		policy:   true,
		sim:      []string{"seed", "warmup", "horizon", "batches"},
	}, fe)
	t := s.Topology
	lm := firstLim(
		checkDim("topology.m", t.M, 1, lim.MaxDim, fe),
		checkDim("topology.n", t.N, 1, lim.MaxDim, fe),
		checkDim("topology.r", t.R, 1, lim.MaxDim, fe))
	checkUnitLoad("params.load", s.Params.Load, fe)
	if s.Sim.Horizon > 0 {
		checkPositive("params.mu", s.Params.Mu, fe)
		if _, ok := closPolicy(s.Params.Policy); !ok {
			fe.addf("params.policy", "%q (want random-available, first-fit or random-try)", s.Params.Policy)
		}
	} else {
		rejectSimExtras(s, fe)
		if !floats.Zero(s.Params.Mu) {
			fe.addf("params.mu", "only read when sim.horizon > 0")
		}
		if s.Params.Policy != "" {
			fe.addf("params.policy", "only read when sim.horizon > 0")
		}
	}
	rate := s.Params.Load * float64(t.N*t.R) * s.Params.Mu
	return firstLim(lm, checkEventSim(s, lim, rate, false, fe))
}

func evalClos(_ *Engine, s *Spec) ([]Measure, error) {
	net := clos.Network{M: s.Topology.M, N: s.Topology.N, R: s.Topology.R}
	lee, err := net.LeeBlocking(s.Params.Load)
	if err != nil {
		return nil, err
	}
	ms := []Measure{
		scalar("nonblocking_strict", b2f(net.StrictSenseNonblocking())),
		scalar("crosspoints", float64(net.Crosspoints())),
		scalar("crossbar_crosspoints", float64(net.CrossbarCrosspoints())),
		scalar("lee_blocking", lee),
	}
	if s.Sim.Horizon > 0 {
		pol, _ := closPolicy(s.Params.Policy)
		r, err := clos.Simulate(net, clos.SimConfig{
			PerInputLoad: s.Params.Load,
			Mu:           s.Params.Mu,
			Policy:       pol,
			Seed:         s.Sim.Seed,
			Warmup:       s.Sim.Warmup,
			Horizon:      s.Sim.Horizon,
			Batches:      s.Sim.Batches,
		})
		if err != nil {
			return nil, err
		}
		ms = append(ms,
			ci("sim_call_blocking", r.CallBlocking),
			ci("sim_internal_blocking", r.InternalBlocking),
			scalar("sim_link_utilization", r.LinkUtilization),
			scalar("sim_events", float64(r.Events)))
	}
	return ms, nil
}

// -------------------------------------------------------------------- wdm

func validateWDM(s *Spec, lim Limits, fe *fieldErrs) *LimitError {
	rejectUnused(s, usage{
		topology: []string{"l", "w"},
		params:   []string{"rate", "cross_rate", "mu"},
		policy:   true,
		conv:     true,
		sim:      []string{"seed", "warmup", "horizon", "batches"},
	}, fe)
	t := s.Topology
	lm := firstLim(
		checkDim("topology.l", t.L, 1, lim.MaxDim, fe),
		checkDim("topology.w", t.W, 1, lim.MaxDim, fe))
	checkPositive("params.rate", s.Params.Rate, fe)
	checkPositive("params.mu", s.Params.Mu, fe)
	checkNonNegative("params.cross_rate", s.Params.CrossRate, fe)
	if s.Sim.Horizon > 0 {
		if _, ok := wdmAssignment(s.Params.Policy); !ok {
			fe.addf("params.policy", "%q (want first-fit or random-fit)", s.Params.Policy)
		}
	} else {
		rejectSimExtras(s, fe)
		if s.Params.Policy != "" {
			fe.addf("params.policy", "only read when sim.horizon > 0")
		}
		if s.Params.Converters {
			fe.addf("params.converters", "only read when sim.horizon > 0")
		}
	}
	rate := s.Params.Rate + s.Params.CrossRate*float64(t.L)
	return firstLim(lm, checkEventSim(s, lim, rate, false, fe))
}

func evalWDM(_ *Engine, s *Spec) ([]Measure, error) {
	p := wdm.Path{
		L:         s.Topology.L,
		W:         s.Topology.W,
		Rate:      s.Params.Rate,
		CrossRate: s.Params.CrossRate,
		Mu:        s.Params.Mu,
	}
	conv, err := p.ConversionBlocking()
	if err != nil {
		return nil, err
	}
	cont, err := p.ContinuityBlocking()
	if err != nil {
		return nil, err
	}
	gain, err := wdm.ConversionGain(p)
	if err != nil {
		return nil, err
	}
	ms := []Measure{
		scalar("conversion_blocking", conv),
		scalar("continuity_blocking", cont),
		scalar("link_utilization", p.LinkUtilization()),
		scalar("conversion_gain", gain),
	}
	if s.Sim.Horizon > 0 {
		asg, _ := wdmAssignment(s.Params.Policy)
		r, err := wdm.Simulate(p, wdm.SimConfig{
			Converters: s.Params.Converters,
			Assignment: asg,
			Seed:       s.Sim.Seed,
			Warmup:     s.Sim.Warmup,
			Horizon:    s.Sim.Horizon,
			Batches:    s.Sim.Batches,
		})
		if err != nil {
			return nil, err
		}
		ms = append(ms,
			ci("sim_e2e_blocking", r.EndToEndBlocking),
			ci("sim_cross_blocking", r.CrossBlocking),
			scalar("sim_utilization", r.Utilization),
			scalar("sim_events", float64(r.Events)))
	}
	return ms, nil
}

// --------------------------------------------------------------- overflow

func validateOverflow(s *Spec, lim Limits, fe *fieldErrs) *LimitError {
	rejectUnused(s, usage{
		topology: []string{"n1"},
		params:   []string{"lambda", "mu", "secondary_n"},
		sim:      []string{"seed", "warmup", "horizon", "batches"},
	}, fe)
	lm := firstLim(
		checkDim("topology.n1", s.Topology.N1, 1, lim.MaxDim, fe),
		checkDim("params.secondary_n", s.Params.SecondaryN, 1, lim.MaxDim, fe))
	checkPositive("params.lambda", s.Params.Lambda, fe)
	checkPositive("params.mu", s.Params.Mu, fe)
	return firstLim(lm, checkEventSim(s, lim, 2*s.Params.Lambda, true, fe))
}

func evalOverflow(e *Engine, s *Spec) ([]Measure, error) {
	sn, mu := s.Params.SecondaryN, s.Params.Mu
	r, err := overflow.Run(overflow.Config{
		PrimaryN:   s.Topology.N1,
		SecondaryN: sn,
		Lambda:     s.Params.Lambda,
		Mu:         mu,
		Seed:       s.Sim.Seed,
		Warmup:     s.Sim.Warmup,
		Horizon:    s.Sim.Horizon,
		Batches:    s.Sim.Batches,
	})
	if err != nil {
		return nil, err
	}
	ms := []Measure{
		ci("sim_primary_blocking", r.PrimaryBlocking),
		ci("sim_secondary_blocking", r.SecondaryBlocking),
		scalar("overflow_mean", r.OverflowMean),
		scalar("overflow_peakedness", r.OverflowPeakedness),
		scalar("sim_events", float64(r.Events)),
	}
	// The Wilkinson chain needs a measurable overflow stream; a run
	// whose primary never blocked has nothing to fit.
	mean, z := r.OverflowMean, r.OverflowPeakedness
	if mean > 0 && z > 0 {
		// Both fits route through the shared grid engine — the same
		// lattice fill path as /v1/grid points — pinned bit-identical
		// to overflow.SecondaryBPPApprox by the property tests.
		bppRes, err := e.solveSecondary(sn, mean, z, mu)
		if err != nil {
			return nil, err
		}
		poisRes, err := e.solveSecondary(sn, mean, 1, mu)
		if err != nil {
			return nil, err
		}
		cc, err := overflow.SecondaryBPPCallCongestion(sn, mean, z, mu)
		if err != nil {
			return nil, err
		}
		ms = append(ms,
			scalar("bpp_secondary_blocking", bppRes),
			scalar("poisson_secondary_blocking", poisRes),
			scalar("bpp_call_congestion", cc))
	}
	return ms, nil
}

// solveSecondary is the grid-routed core of overflow.SecondaryBPPApprox:
// fit a BPP source to the measured overflow (mean, z) and solve the
// secondary crossbar's product form.
func (e *Engine) solveSecondary(secondaryN int, mean, z, mu float64) (float64, error) {
	src, err := dist.FitMeanPeakedness(mean, z, mu)
	if err != nil {
		return 0, err
	}
	routes := float64(secondaryN * secondaryN)
	sw := core.Switch{N1: secondaryN, N2: secondaryN, Classes: []core.Class{{
		Name: "overflow", A: 1,
		Alpha: src.Alpha / routes, Beta: src.Beta / routes, Mu: mu,
	}}}
	res, err := e.solve(sw)
	if err != nil {
		return 0, err
	}
	return res.Blocking[0], nil
}

// ---------------------------------------------------------------- retrial

func validateRetrial(s *Spec, lim Limits, fe *fieldErrs) *LimitError {
	rejectUnused(s, usage{
		topology: []string{"n1", "n2"},
		params:   []string{"lambda", "mu", "retry_rate", "max_attempts"},
		sim:      []string{"seed", "warmup", "horizon", "batches"},
	}, fe)
	lm := firstLim(
		checkDim("topology.n1", s.Topology.N1, 1, lim.MaxDim, fe),
		checkDim("topology.n2", s.Topology.N2, 1, lim.MaxDim, fe))
	checkPositive("params.lambda", s.Params.Lambda, fe)
	checkPositive("params.mu", s.Params.Mu, fe)
	attempts := s.Params.MaxAttempts
	if attempts < 0 {
		fe.addf("params.max_attempts", "%d, must be >= 0 (0 defaults to 1)", attempts)
		attempts = 1
	}
	if attempts == 0 {
		attempts = 1
	}
	if attempts > 1 {
		checkPositive("params.retry_rate", s.Params.RetryRate, fe)
	} else if !floats.Zero(s.Params.RetryRate) {
		fe.addf("params.retry_rate", "ignored when max_attempts <= 1")
	}
	rate := s.Params.Lambda * float64(attempts)
	return firstLim(lm, checkEventSim(s, lim, rate, true, fe))
}

func evalRetrial(e *Engine, s *Spec) ([]Measure, error) {
	n1, n2 := s.Topology.N1, s.Topology.N2
	r, err := retrial.Run(retrial.Config{
		N1:          n1,
		N2:          n2,
		Lambda:      s.Params.Lambda,
		Mu:          s.Params.Mu,
		RetryRate:   s.Params.RetryRate,
		MaxAttempts: s.Params.MaxAttempts,
		Seed:        s.Sim.Seed,
		Warmup:      s.Sim.Warmup,
		Horizon:     s.Sim.Horizon,
		Batches:     s.Sim.Batches,
	})
	if err != nil {
		return nil, err
	}
	// The cleared anchor is the same product form retrial.ClearedBlocking
	// solves, grid-routed (pinned by the property tests).
	sw := core.Switch{N1: n1, N2: n2, Classes: []core.Class{{
		A: 1, Alpha: s.Params.Lambda / float64(n1*n2), Mu: s.Params.Mu,
	}}}
	res, err := e.solve(sw)
	if err != nil {
		return nil, err
	}
	return []Measure{
		ci("sim_abandonment", r.Abandonment),
		ci("sim_first_attempt_blocking", r.FirstAttemptBlocking),
		scalar("mean_attempts", r.MeanAttempts),
		scalar("mean_orbit", r.MeanOrbit),
		ci("sim_concurrency", r.Concurrency),
		scalar("sim_events", float64(r.Events)),
		scalar("cleared_blocking", res.Blocking[0]),
	}, nil
}

// ---------------------------------------------------------------- hotspot

func validateHotspot(s *Spec, lim Limits, fe *fieldErrs) *LimitError {
	rejectUnused(s, usage{
		topology: []string{"n1", "n2"},
		params:   []string{"lambda", "mu", "hot_fraction"},
		sim:      []string{"seed", "warmup", "horizon", "batches"},
	}, fe)
	lm := firstLim(
		checkDim("topology.n1", s.Topology.N1, 1, lim.MaxDim, fe),
		checkDim("topology.n2", s.Topology.N2, 2, lim.MaxDim, fe))
	checkPositive("params.lambda", s.Params.Lambda, fe)
	checkPositive("params.mu", s.Params.Mu, fe)
	checkUnitLoad("params.hot_fraction", s.Params.HotFraction, fe)
	if s.Sim.Horizon <= 0 {
		rejectSimExtras(s, fe)
	}
	return firstLim(lm, checkEventSim(s, lim, s.Params.Lambda, false, fe))
}

func evalHotspot(_ *Engine, s *Spec) ([]Measure, error) {
	m := hotspot.Model{
		N1:          s.Topology.N1,
		N2:          s.Topology.N2,
		Lambda:      s.Params.Lambda,
		Mu:          s.Params.Mu,
		HotFraction: s.Params.HotFraction,
	}
	res, err := hotspot.Solve(m)
	if err != nil {
		return nil, err
	}
	ms := []Measure{
		scalar("hot_nonblocking", res.HotNonBlocking),
		scalar("cold_nonblocking", res.ColdNonBlocking),
		scalar("nonblocking", res.NonBlocking),
		scalar("hot_utilization", res.HotUtilization),
		scalar("mean_busy", res.MeanBusy),
	}
	if s.Sim.Horizon > 0 {
		sr, err := hotspot.Simulate(m, hotspot.SimConfig{
			Seed:    s.Sim.Seed,
			Warmup:  s.Sim.Warmup,
			Horizon: s.Sim.Horizon,
			Batches: s.Sim.Batches,
		})
		if err != nil {
			return nil, err
		}
		ms = append(ms,
			ci("sim_hot_blocking", sr.HotBlocking),
			ci("sim_cold_blocking", sr.ColdBlocking),
			ci("sim_all_blocking", sr.AllBlocking),
			ci("sim_mean_busy", sr.MeanBusy),
			scalar("sim_events", float64(sr.Events)))
	}
	return ms, nil
}

// ----------------------------------------------------------------- inputq

func validateInputq(s *Spec, lim Limits, fe *fieldErrs) *LimitError {
	rejectUnused(s, usage{
		topology: []string{"n1"},
		params:   []string{"load"},
		policy:   true,
		sim:      []string{"seed", "slots", "queue_cap"},
	}, fe)
	lm := checkDim("topology.n1", s.Topology.N1, 1, lim.MaxDim, fe)
	checkUnitLoad("params.load", s.Params.Load, fe)
	if _, ok := inputqPolicy(s.Params.Policy); !ok {
		fe.addf("params.policy", "%q (want input-queued or output-queued)", s.Params.Policy)
	}
	if s.Sim.QueueCap < 0 {
		fe.addf("sim.queue_cap", "%d, must be >= 0 (0 = package default)", s.Sim.QueueCap)
	}
	return firstLim(lm, checkSlotSim(lim, 2*s.Topology.N1, s.Sim.Slots, true, fe))
}

func evalInputq(_ *Engine, s *Spec) ([]Measure, error) {
	d, _ := inputqPolicy(s.Params.Policy)
	r, err := inputq.Run(inputq.Config{
		N:          s.Topology.N1,
		Load:       s.Params.Load,
		Discipline: d,
		Slots:      s.Sim.Slots,
		QueueCap:   s.Sim.QueueCap,
		Seed:       s.Sim.Seed,
	})
	if err != nil {
		return nil, err
	}
	return []Measure{
		scalar("saturation_hol", inputq.SaturationHOL()),
		ci("throughput", r.Throughput),
		scalar("mean_delay", r.MeanDelay),
		scalar("dropped", float64(r.Dropped)),
		scalar("delivered", float64(r.Delivered)),
	}, nil
}

// ----------------------------------------------------------------- minnet

func validateMinnet(s *Spec, lim Limits, fe *fieldErrs) *LimitError {
	rejectUnused(s, usage{
		topology: []string{"n1"},
		params:   []string{"load"},
		sim:      []string{"seed", "slots"},
	}, fe)
	n := s.Topology.N1
	lm := checkDim("topology.n1", n, 2, lim.MaxDim, fe)
	if n >= 2 && n&(n-1) != 0 {
		fe.addf("topology.n1", "%d, an omega network needs a power of two", n)
	}
	checkUnitLoad("params.load", s.Params.Load, fe)
	lm = firstLim(lm, checkSlotSim(lim, 2*n, s.Sim.Slots, false, fe))
	if s.Sim.Slots == 0 && s.Sim.Seed != 0 {
		fe.addf("sim.seed", "set without sim.slots")
	}
	return lm
}

func evalMinnet(_ *Engine, s *Spec) ([]Measure, error) {
	n, p := s.Topology.N1, s.Params.Load
	rec, err := minnet.Recursion(n, p)
	if err != nil {
		return nil, err
	}
	adv, err := minnet.CrossbarAdvantage(n, p)
	if err != nil {
		return nil, err
	}
	ms := []Measure{
		scalar("recursion_throughput", rec),
		scalar("crossbar_advantage", adv),
	}
	if s.Sim.Slots > 0 {
		r, err := minnet.Simulate(n, p, s.Sim.Slots, s.Sim.Seed)
		if err != nil {
			return nil, err
		}
		ms = append(ms,
			ci("sim_per_output", r.PerOutput),
			scalar("sim_delivered", float64(r.Delivered)),
			scalar("sim_offered", float64(r.Offered)))
	}
	return ms, nil
}

// ------------------------------------------------------------------- link

func validateLink(s *Spec, lim Limits, fe *fieldErrs) *LimitError {
	rejectUnused(s, usage{
		topology: []string{"c"},
		classes:  true,
	}, fe)
	lm := checkDim("topology.c", s.Topology.C, 1, lim.MaxDim, fe)
	return firstLim(lm, checkClasses(s, lim, fe))
}

func evalLink(_ *Engine, s *Spec) ([]Measure, error) {
	classes := make([]link.Class, len(s.Classes))
	for i, c := range s.Classes {
		classes[i] = link.Class{Name: c.Name, A: c.A, Alpha: c.Alpha, Beta: c.Beta, Mu: c.Mu}
	}
	res, err := link.Solve(link.Link{C: s.Topology.C, Classes: classes})
	if err != nil {
		return nil, err
	}
	ms := make([]Measure, 0, 2*len(s.Classes))
	for i := range s.Classes {
		ms = append(ms, scalar(fmt.Sprintf("blocking_%d", i), res.Blocking[i]))
	}
	for i := range s.Classes {
		ms = append(ms, scalar(fmt.Sprintf("concurrency_%d", i), res.Concurrency[i]))
	}
	return ms, nil
}

// -------------------------------------------------------------- transient

func validateTransient(s *Spec, lim Limits, fe *fieldErrs) *LimitError {
	rejectUnused(s, usage{
		topology: []string{"n1", "n2"},
		params:   []string{"class"},
		classes:  true,
		times:    true,
	}, fe)
	t := s.Topology
	lm := firstLim(
		checkDim("topology.n1", t.N1, 1, lim.MaxDim, fe),
		checkDim("topology.n2", t.N2, 1, lim.MaxDim, fe),
		checkClasses(s, lim, fe),
		checkTimes(s, lim, fe))
	if c := s.Params.Class; c < 0 || c >= len(s.Classes) {
		fe.addf("params.class", "%d outside the class list [0, %d)", c, len(s.Classes))
	}
	if lm == nil && len(fe.fields) == 0 {
		minN := t.N1
		if t.N2 < minN {
			minN = t.N2
		}
		if bound := stateBound(minN, s.Classes); bound > float64(lim.MaxStates) {
			lm = &LimitError{Field: "topology", Msg: fmt.Sprintf(
				"state-space bound %.3g exceeds the limit %d", bound, lim.MaxStates)}
		}
	}
	return lm
}

func evalTransient(e *Engine, s *Spec) ([]Measure, error) {
	classes := make([]core.Class, len(s.Classes))
	for i, c := range s.Classes {
		classes[i] = core.Class{Name: c.Name, A: c.A, Alpha: c.Alpha, Beta: c.Beta, Mu: c.Mu}
	}
	sw := core.Switch{N1: s.Topology.N1, N2: s.Topology.N2, Classes: classes}
	chain, err := statespace.NewChain(sw, e.lim.MaxStates)
	if err != nil {
		return nil, err
	}
	pi0, err := transient.EmptyStart(chain)
	if err != nil {
		return nil, err
	}
	// Bound uniformization work by the engine's event budget: each
	// series step is one dense |S| x |S| matrix-vector product, so the
	// step cap is the budget divided by the state count. Converged
	// series are unaffected (the cap only cuts off divergence), which
	// keeps the result bit-identical to the legacy default.
	steps := int(e.lim.MaxEvents / float64(len(chain.States)))
	if steps < 64 {
		steps = 64
	}
	traj, err := transient.BlockingTrajectory(chain, pi0, s.Params.Class, s.Params.Times, transient.Options{MaxSteps: steps})
	if err != nil {
		return nil, err
	}
	ms := make([]Measure, len(traj))
	for i, v := range traj {
		ms[i] = scalar(fmt.Sprintf("blocking_t%d", i), v)
	}
	return ms, nil
}
