package scenario_test

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"xbar/internal/scenario"
)

func validSlotted() *scenario.Spec {
	return &scenario.Spec{
		Discipline: "slotted",
		Topology:   scenario.Topology{N1: 8, N2: 8},
		Params:     scenario.Params{Load: 0.5},
	}
}

func TestValidateTaxonomy(t *testing.T) {
	lim := scenario.Limits{}
	cases := []struct {
		name   string
		mutate func(*scenario.Spec)
		field  string // expected FieldError field; "" = LimitError or unknown
		kind   string // "invalid", "limit", "unknown"
	}{
		{"ok", func(s *scenario.Spec) {}, "", "ok"},
		{"unknown discipline", func(s *scenario.Spec) { s.Discipline = "quantum" }, "", "unknown"},
		{"missing dimension", func(s *scenario.Spec) { s.Topology.N2 = 0 }, "topology.n2", "invalid"},
		{"negative dimension", func(s *scenario.Spec) { s.Topology.N1 = -3 }, "topology.n1", "invalid"},
		{"load out of range", func(s *scenario.Spec) { s.Params.Load = 1.5 }, "params.load", "invalid"},
		{"load NaN", func(s *scenario.Spec) { s.Params.Load = nan() }, "params.load", "invalid"},
		{"stray field", func(s *scenario.Spec) { s.Params.Lambda = 2 }, "params.lambda", "invalid"},
		{"stray topology", func(s *scenario.Spec) { s.Topology.C = 4 }, "topology.c", "invalid"},
		{"stray classes", func(s *scenario.Spec) { s.Classes = []scenario.Class{{A: 1, Alpha: 1, Mu: 1}} }, "classes", "invalid"},
		{"seed without slots", func(s *scenario.Spec) { s.Sim.Seed = 9 }, "sim.seed", "invalid"},
		{"too few slots", func(s *scenario.Spec) { s.Sim.Slots = 7 }, "sim.slots", "invalid"},
		{"duplicate measure", func(s *scenario.Spec) { s.Measures = []string{"throughput", "throughput"} }, "measures[1]", "invalid"},
		{"oversized dimension", func(s *scenario.Spec) { s.Topology.N1 = 5000 }, "topology.n1", "limit"},
		{"oversized slot budget", func(s *scenario.Spec) {
			s.Topology.N1 = 4096
			s.Topology.N2 = 4096
			s.Sim.Slots = 1 << 19
			s.Sim.Seed = 1
		}, "sim.slots", "limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSlotted()
			tc.mutate(s)
			err := s.Validate(lim)
			switch tc.kind {
			case "ok":
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
			case "unknown":
				var ud *scenario.UnknownDisciplineError
				if !errors.As(err, &ud) {
					t.Fatalf("want UnknownDisciplineError, got %v", err)
				}
				if !strings.Contains(ud.Error(), "slotted") {
					t.Errorf("error should list disciplines: %v", ud)
				}
			case "invalid":
				var inv *scenario.InvalidError
				if !errors.As(err, &inv) {
					t.Fatalf("want InvalidError, got %v", err)
				}
				found := false
				for _, f := range inv.Fields {
					if f.Field == tc.field {
						found = true
					}
				}
				if !found {
					t.Errorf("want a FieldError on %q, got %v", tc.field, inv.Fields)
				}
			case "limit":
				var le *scenario.LimitError
				if !errors.As(err, &le) {
					t.Fatalf("want LimitError, got %v", err)
				}
				if le.Field != tc.field {
					t.Errorf("LimitError on %q, want %q", le.Field, tc.field)
				}
			}
		})
	}
}

func nan() float64 { return math.NaN() }

func TestValidateSimRequired(t *testing.T) {
	s := &scenario.Spec{
		Discipline: "overflow",
		Topology:   scenario.Topology{N1: 4},
		Params:     scenario.Params{Lambda: 10, Mu: 1, SecondaryN: 4},
	}
	err := s.Validate(scenario.Limits{})
	var inv *scenario.InvalidError
	if !errors.As(err, &inv) {
		t.Fatalf("want InvalidError for missing horizon, got %v", err)
	}
	s.Sim = scenario.Sim{Seed: 1, Warmup: 5, Horizon: 50}
	if err := s.Validate(scenario.Limits{}); err != nil {
		t.Fatalf("Validate with sim: %v", err)
	}
	// An event budget past the limit is a LimitError.
	s.Params.Lambda = 1e9
	var le *scenario.LimitError
	if err := s.Validate(scenario.Limits{}); !errors.As(err, &le) {
		t.Fatalf("want LimitError for event budget, got %v", err)
	}
}

func TestDecodeStrict(t *testing.T) {
	if _, err := scenario.Decode(strings.NewReader(`{"discipline": "slotted", "bogus": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := scenario.Decode(strings.NewReader(`{"discipline": "slotted"} trailing`)); err == nil {
		t.Error("trailing data accepted")
	}
	if _, err := scenario.Decode(strings.NewReader(`{`)); err == nil {
		t.Error("truncated JSON accepted")
	}
	s, err := scenario.Decode(strings.NewReader(`{"discipline": "slotted", "topology": {"n1": 2, "n2": 2}, "params": {"load": 0.5}}`))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if s.Discipline != "slotted" || s.Topology.N1 != 2 {
		t.Errorf("decoded %+v", s)
	}
}

func TestKeyRoundTripAndSensitivity(t *testing.T) {
	s := validSlotted()
	key := s.Key()

	// JSON round trip preserves the key exactly.
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := scenario.Decode(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if back.Key() != key {
		t.Errorf("round-trip key drift:\n%s\n%s", key, back.Key())
	}

	// Class names and the measure filter do not enter the key...
	named := validSlotted()
	named.Measures = []string{"throughput"}
	if named.Key() != key {
		t.Errorf("measure filter changed the key")
	}
	// ...but every numeric field does.
	perturbed := []*scenario.Spec{validSlotted(), validSlotted(), validSlotted()}
	perturbed[0].Params.Load = 0.5000000000000001
	perturbed[1].Topology.N2 = 9
	perturbed[2].Sim = scenario.Sim{Seed: 1, Slots: 100}
	for i, p := range perturbed {
		if p.Key() == key {
			t.Errorf("perturbation %d did not change the key", i)
		}
	}
}

func TestEngineMemoAndFilter(t *testing.T) {
	e := scenario.New(scenario.Options{})
	s := validSlotted()
	r1, err := e.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Measures) != len(r2.Measures) {
		t.Fatalf("memo changed measure count")
	}
	for i := range r1.Measures {
		if r1.Measures[i] != r2.Measures[i] {
			t.Errorf("memoized measure %d differs: %+v vs %+v", i, r1.Measures[i], r2.Measures[i])
		}
	}
	st := e.Stats()
	if st.Evaluations != 1 || st.MemoHits != 1 {
		t.Errorf("stats %+v, want 1 evaluation + 1 memo hit", st)
	}

	// The filter selects and orders; unknown names are indexed errors.
	sf := validSlotted()
	sf.Measures = []string{"acceptance", "throughput"}
	rf, err := e.Evaluate(sf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rf.Measures) != 2 || rf.Measures[0].Name != "acceptance" || rf.Measures[1].Name != "throughput" {
		t.Errorf("filtered measures %+v", rf.Measures)
	}
	bad := validSlotted()
	bad.Measures = []string{"throughput", "nope"}
	var inv *scenario.InvalidError
	if _, err := e.Evaluate(bad); !errors.As(err, &inv) {
		t.Fatalf("want InvalidError for unknown measure, got %v", err)
	} else if inv.Fields[0].Field != "measures[1]" {
		t.Errorf("unknown measure located at %q", inv.Fields[0].Field)
	}

	// Recycled results feed later clones without corrupting the memo.
	e.PutResult(r1)
	e.PutResult(rf)
	r3, err := e.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Measures[0] != r2.Measures[0] {
		t.Errorf("recycled clone differs: %+v vs %+v", r3.Measures[0], r2.Measures[0])
	}
}

func TestEvaluateBatch(t *testing.T) {
	e := scenario.New(scenario.Options{})
	a := validSlotted()
	dup := validSlotted()
	filtered := validSlotted()
	filtered.Measures = []string{"throughput"}
	bad := validSlotted()
	bad.Topology.N1 = 0
	other := validSlotted()
	other.Params.Load = 0.25

	specs := []*scenario.Spec{a, dup, filtered, bad, nil, other}
	results, errs := e.EvaluateBatch(specs)
	for i := range specs {
		switch i {
		case 3, 4:
			if errs[i] == nil || results[i] != nil {
				t.Errorf("spec %d: want error, got result %+v err %v", i, results[i], errs[i])
			}
		default:
			if errs[i] != nil || results[i] == nil {
				t.Errorf("spec %d: %v", i, errs[i])
			}
		}
	}
	if len(results[2].Measures) != 1 {
		t.Errorf("filtered batch entry has %d measures", len(results[2].Measures))
	}
	if results[0].Measures[0] != results[1].Measures[0] {
		t.Errorf("deduplicated specs disagree")
	}
	st := e.Stats()
	if st.Evaluations != 2 {
		t.Errorf("batch ran %d evaluations, want 2 (a+dup+filtered share one)", st.Evaluations)
	}
}

func TestPackageEvaluate(t *testing.T) {
	r, err := scenario.Evaluate(validSlotted())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Measure("throughput"); !ok {
		t.Errorf("missing throughput in %+v", r.Measures)
	}
	if r.Discipline != "slotted" {
		t.Errorf("discipline %q", r.Discipline)
	}
}

func TestDisciplinesSorted(t *testing.T) {
	ds := scenario.Disciplines()
	if len(ds) != 10 {
		t.Fatalf("%d disciplines, want 10: %v", len(ds), ds)
	}
	for i := 1; i < len(ds); i++ {
		if ds[i-1] >= ds[i] {
			t.Errorf("not sorted: %v", ds)
		}
	}
}
