package scenario_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"xbar/internal/scenario"
)

// floatBits compares floats for bit-identity (== would miss NaN).
func floatBits(x float64) uint64 { return math.Float64bits(x) }

// fuzzLimits keeps fuzzer-found specs cheap: small switches, short
// simulations, tiny chains. The fuzzer explores the spec space for
// crashes and contract violations, not for throughput.
var fuzzLimits = scenario.Limits{
	MaxDim:     48,
	MaxClasses: 6,
	MaxSlots:   2000,
	MaxEvents:  1e5,
	MaxStates:  512,
	MaxTimes:   8,
}

// FuzzSpec drives the full decode → validate → evaluate → re-encode
// round trip. Contract under fuzzing:
//
//   - Decode never panics; accepted documents re-encode to a spec with
//     the same canonical key (key stability).
//   - Validate never panics and returns only the documented error
//     taxonomy (InvalidError / LimitError / UnknownDisciplineError).
//   - A validated spec evaluates without panic; failures are EvalError;
//     successes are deterministic (same key → bit-identical measures).
func FuzzSpec(f *testing.F) {
	corpus, err := filepath.Glob(filepath.Join("testdata", "scenarios", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	for _, file := range corpus {
		raw, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	// Malformed seeds steer the mutator at the decoder's edges.
	f.Add([]byte(`{"discipline": "slotted"`))
	f.Add([]byte(`{"discipline": "slotted", "topology": {"n1": -1, "n2": 0}, "params": {"load": 2}}`))
	f.Add([]byte(`{"discipline": "nope"} {"trailing": true}`))
	f.Add([]byte(`{"discipline": "link", "topology": {"c": 3}, "classes": [{"a": 1, "alpha": 1e308, "beta": -1e308, "mu": 1e-308}]}`))
	f.Add([]byte(`{"discipline": "transient", "topology": {"n1": 2, "n2": 2}, "classes": [{"a": 1, "alpha": 0.1, "mu": 1}], "params": {"times": [0, 1e9]}}`))

	e := scenario.New(scenario.Options{Limits: fuzzLimits})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := scenario.Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := s.Validate(fuzzLimits); err != nil {
			var inv *scenario.InvalidError
			var le *scenario.LimitError
			var ud *scenario.UnknownDisciplineError
			if !errors.As(err, &inv) && !errors.As(err, &le) && !errors.As(err, &ud) {
				t.Fatalf("Validate returned an undocumented error type %T: %v", err, err)
			}
			return
		}

		// Key stability across a JSON round trip.
		key := s.Key()
		raw, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal of a valid spec: %v", err)
		}
		back, err := scenario.Decode(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("re-decode of a marshaled spec: %v", err)
		}
		if back.Key() != key {
			t.Fatalf("key drift across round trip:\n%s\n%s", key, back.Key())
		}

		r1, err := e.Evaluate(s)
		if err != nil {
			var inv *scenario.InvalidError
			var ee *scenario.EvalError
			if !errors.As(err, &ee) && !errors.As(err, &inv) {
				t.Fatalf("Evaluate returned an undocumented error type %T: %v", err, err)
			}
			return
		}
		if r1.Discipline != s.Discipline {
			t.Fatalf("result discipline %q for spec %q", r1.Discipline, s.Discipline)
		}
		if len(s.Measures) == 0 && len(r1.Measures) == 0 {
			t.Fatalf("empty measure set for a valid %q spec", s.Discipline)
		}
		// Determinism: a second evaluation (memo or not) is
		// bit-identical.
		r2, err := e.Evaluate(s)
		if err != nil {
			t.Fatalf("second Evaluate failed after a success: %v", err)
		}
		if len(r1.Measures) != len(r2.Measures) {
			t.Fatalf("measure count changed between evaluations")
		}
		for i := range r1.Measures {
			a, b := r1.Measures[i], r2.Measures[i]
			if a.Name != b.Name || floatBits(a.Value) != floatBits(b.Value) || floatBits(a.HalfWidth) != floatBits(b.HalfWidth) {
				t.Fatalf("nondeterministic measure %d: %+v vs %+v", i, a, b)
			}
		}
		e.PutResult(r1)
		e.PutResult(r2)
	})
}
