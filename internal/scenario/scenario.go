// Package scenario unifies the repo's ten scenario packages behind one
// declarative specification and one Evaluate entry point.
//
// The paper's model family is a single product-form fabric evaluated
// under many scenario variants — synchronous slotted operation, Clos
// and omega multistage alternatives, WDM transmission paths, overflow
// and retrial recovery, hot-spot access, input queueing, multirate
// links and transient start-up — which the repo grew as siloed
// packages, each with its own model types and entry points. A Spec
// names the discipline and carries the switch topology, the BPP
// traffic classes (alpha, beta, mu), the scenario parameters and the
// simulation block in one JSON-able document; Evaluate routes it
// through a thin adapter onto the legacy package, whose results the
// package's property tests pin bit-identical. The payoff is that every
// scenario becomes batchable (Engine dedups and memoizes by canonical
// key, product-form solves join grid.Engine fill groups), cacheable
// (the canonical Key is an exact cache identity) and servable
// (POST /v1/scenario on xbard) for free — and the spec space itself is
// fuzzable (FuzzSpec), giving the scenario-diversity generator the
// ROADMAP calls for.
//
// See docs/SCENARIOS.md for the spec schema and the adapter table.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// Topology is the structural part of a Spec. Which fields a discipline
// reads is documented per discipline (docs/SCENARIOS.md); fields a
// discipline does not read must stay zero — strict validation rejects
// stray values so that the canonical Key is an exact identity.
type Topology struct {
	// N1, N2 are crossbar dimensions (slotted uses N1 inputs x N2
	// outputs; inputq, minnet are square and read N1).
	N1 int `json:"n1,omitempty"`
	N2 int `json:"n2,omitempty"`
	// M, N, R describe a Clos network C(m, n, r).
	M int `json:"m,omitempty"`
	N int `json:"n,omitempty"`
	R int `json:"r,omitempty"`
	// L, W describe a WDM path: L hops of W wavelengths.
	L int `json:"l,omitempty"`
	W int `json:"w,omitempty"`
	// C is a multirate link's capacity in units.
	C int `json:"c,omitempty"`
}

// Class is one BPP traffic class in per-route units, mirroring
// core.Class: arrival intensity alpha + beta*k, service rate mu,
// bandwidth a.
type Class struct {
	Name  string  `json:"name,omitempty"`
	A     int     `json:"a"`
	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta,omitempty"`
	Mu    float64 `json:"mu"`
}

// Params carries the scenario-specific knobs. As with Topology, fields
// the discipline does not read must stay zero.
type Params struct {
	// Load is a per-input offered load in [0, 1] (slotted, clos,
	// inputq, minnet).
	Load float64 `json:"load,omitempty"`
	// Lambda is a total Poisson arrival rate (overflow, retrial,
	// hotspot).
	Lambda float64 `json:"lambda,omitempty"`
	// Mu is the service (teardown) rate where the discipline carries a
	// single implicit class (clos, wdm, overflow, retrial, hotspot).
	Mu float64 `json:"mu,omitempty"`
	// Rate and CrossRate are the WDM end-to-end and per-link
	// cross-traffic arrival rates.
	Rate      float64 `json:"rate,omitempty"`
	CrossRate float64 `json:"cross_rate,omitempty"`
	// HotFraction is the hotspot discipline's hot-output probability.
	HotFraction float64 `json:"hot_fraction,omitempty"`
	// RetryRate and MaxAttempts parameterize the retrial orbit.
	RetryRate   float64 `json:"retry_rate,omitempty"`
	MaxAttempts int     `json:"max_attempts,omitempty"`
	// SecondaryN is the overflow discipline's secondary switch size.
	SecondaryN int `json:"secondary_n,omitempty"`
	// Policy selects a discipline-specific service discipline: the Clos
	// middle-stage policy (random-available, first-fit, random-try),
	// the WDM assignment (first-fit, random-fit) or the inputq
	// discipline (input-queued, output-queued). Empty selects each
	// package's default.
	Policy string `json:"policy,omitempty"`
	// Converters relaxes WDM wavelength continuity.
	Converters bool `json:"converters,omitempty"`
	// Class is the class index transient trajectories report.
	Class int `json:"class,omitempty"`
	// Times are the transient evaluation times.
	Times []float64 `json:"times,omitempty"`
}

// Sim is the simulation block. A zero Sim means "analytic measures
// only" for disciplines with optional simulation; disciplines that are
// pure simulations (overflow, retrial, inputq) require it.
type Sim struct {
	Seed    uint64  `json:"seed,omitempty"`
	Warmup  float64 `json:"warmup,omitempty"`
	Horizon float64 `json:"horizon,omitempty"`
	Batches int     `json:"batches,omitempty"`
	// Slots is the horizon of the slotted simulators (slotted, inputq,
	// minnet).
	Slots int `json:"slots,omitempty"`
	// QueueCap bounds inputq queues (0 = the package default).
	QueueCap int `json:"queue_cap,omitempty"`
}

// Spec is one declarative scenario: a discipline name plus the
// structural, traffic, parameter and simulation blocks it reads.
type Spec struct {
	Discipline string   `json:"discipline"`
	Topology   Topology `json:"topology"`
	Classes    []Class  `json:"classes,omitempty"`
	Params     Params   `json:"params"`
	Sim        Sim      `json:"sim"`
	// Measures, when non-empty, filters the result to the named
	// measures (in the order given). Unknown names are rejected after
	// evaluation, when the discipline's measure set is known.
	Measures []string `json:"measures,omitempty"`
}

// Measure is one named scalar of a Result. HalfWidth is non-zero for
// simulation estimates carrying a 95% confidence interval.
type Measure struct {
	Name      string  `json:"name"`
	Value     float64 `json:"value"`
	HalfWidth float64 `json:"half_width,omitempty"`
}

// Result is the uniform evaluation outcome: the discipline echoed and
// its measures in a fixed, documented order.
type Result struct {
	Discipline string    `json:"discipline"`
	Measures   []Measure `json:"measures"`
}

// Measure returns the named measure and whether it exists.
func (r *Result) Measure(name string) (Measure, bool) {
	for _, m := range r.Measures {
		if m.Name == name {
			return m, true
		}
	}
	return Measure{}, false
}

// FieldError locates one validation failure by the JSON path of the
// offending field ("params.load", "classes[2].mu").
type FieldError struct {
	Field string `json:"field"`
	Msg   string `json:"error"`
}

// InvalidError reports a structurally malformed spec: required fields
// missing, values out of domain, fields set that the discipline does
// not read. Maps to HTTP 400.
type InvalidError struct {
	Fields []FieldError
}

func (e *InvalidError) Error() string {
	var b strings.Builder
	b.WriteString("invalid scenario spec")
	for i, f := range e.Fields {
		if i == 0 {
			b.WriteString(": ")
		} else {
			b.WriteString("; ")
		}
		b.WriteString(f.Field)
		b.WriteString(": ")
		b.WriteString(f.Msg)
	}
	return b.String()
}

// LimitError reports a well-formed spec that exceeds an evaluation
// limit (topology dimension, class count, simulation budget). Maps to
// HTTP 413.
type LimitError struct {
	Field string
	Msg   string
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("scenario too large: %s: %s", e.Field, e.Msg)
}

// UnknownDisciplineError reports a discipline name no adapter serves.
// Maps to HTTP 422.
type UnknownDisciplineError struct {
	Discipline string
}

func (e *UnknownDisciplineError) Error() string {
	return fmt.Sprintf("unknown discipline %q (have %s)",
		e.Discipline, strings.Join(Disciplines(), ", "))
}

// Decode reads one spec from r with the server's strictness: unknown
// fields rejected, trailing data rejected. Decoding errors are plain
// errors (the transport layer's 400); the spec is NOT validated — call
// Spec.Validate (or let Engine.Evaluate do it).
func Decode(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		// Preserve MaxBytesReader's error identity for the transport
		// layer's 413 mapping.
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, err
		}
		return nil, fmt.Errorf("invalid JSON: %v", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("trailing data after JSON body")
	}
	return &s, nil
}

// hexFloat renders x exactly: two keys collide only for bit-identical
// parameters (the grid.ClassKey / xbard cacheKey convention).
func hexFloat(x float64) string { return strconv.FormatFloat(x, 'x', -1, 64) }

// Key canonicalizes a spec to an exact cache identity: two specs with
// equal keys evaluate to bit-identical results. Every field Evaluate
// can read enters the key — simulation measures depend on the seed and
// the full parameter set, so nothing is canonicalized away except
// class names (which never enter the numerics) and the Measures
// filter (the engine memoizes the full measure set and filters per
// call). Strict validation guarantees fields a discipline ignores are
// zero, so they cannot fragment the key space.
func (s *Spec) Key() string {
	var b strings.Builder
	b.Grow(128 + 72*len(s.Classes))
	b.WriteString(s.Discipline)
	t := s.Topology
	for _, d := range [...]int{t.N1, t.N2, t.M, t.N, t.R, t.L, t.W, t.C} {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(d))
	}
	for i := range s.Classes {
		c := &s.Classes[i]
		b.WriteString("|c")
		b.WriteString(strconv.Itoa(c.A))
		b.WriteByte(':')
		b.WriteString(hexFloat(c.Alpha))
		b.WriteByte(':')
		b.WriteString(hexFloat(c.Beta))
		b.WriteByte(':')
		b.WriteString(hexFloat(c.Mu))
	}
	p := s.Params
	b.WriteString("|p")
	for _, f := range [...]float64{p.Load, p.Lambda, p.Mu, p.Rate, p.CrossRate, p.HotFraction, p.RetryRate} {
		b.WriteByte(':')
		b.WriteString(hexFloat(f))
	}
	b.WriteByte(':')
	b.WriteString(strconv.Itoa(p.MaxAttempts))
	b.WriteByte(':')
	b.WriteString(strconv.Itoa(p.SecondaryN))
	b.WriteByte(':')
	b.WriteString(strconv.Itoa(p.Class))
	b.WriteByte(':')
	b.WriteString(p.Policy)
	b.WriteByte(':')
	b.WriteString(strconv.FormatBool(p.Converters))
	for _, t := range p.Times {
		b.WriteString("|t")
		b.WriteString(hexFloat(t))
	}
	sim := s.Sim
	b.WriteString("|s")
	b.WriteString(strconv.FormatUint(sim.Seed, 16))
	b.WriteByte(':')
	b.WriteString(hexFloat(sim.Warmup))
	b.WriteByte(':')
	b.WriteString(hexFloat(sim.Horizon))
	b.WriteByte(':')
	b.WriteString(strconv.Itoa(sim.Batches))
	b.WriteByte(':')
	b.WriteString(strconv.Itoa(sim.Slots))
	b.WriteByte(':')
	b.WriteString(strconv.Itoa(sim.QueueCap))
	return b.String()
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
