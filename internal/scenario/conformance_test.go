package scenario_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"testing"

	"xbar/internal/clos"
	"xbar/internal/core"
	"xbar/internal/hotspot"
	"xbar/internal/inputq"
	"xbar/internal/link"
	"xbar/internal/minnet"
	"xbar/internal/overflow"
	"xbar/internal/retrial"
	"xbar/internal/scenario"
	"xbar/internal/slotted"
	"xbar/internal/statespace"
	"xbar/internal/stats"
	"xbar/internal/transient"
	"xbar/internal/wdm"
)

// conformanceReport, when set, writes the corpus comparison as a JSON
// artifact (the CI scenario-conformance job uploads it with
// if: always(), so a red run still leaves the diagnostics).
var conformanceReport = flag.String("conformance-report", "", "write the corpus conformance report to this file")

// legacyMeasures evaluates a spec through the ORIGINAL package entry
// points, mirroring each adapter measure for measure. This is the
// bit-identity pin: the adapters (including their grid-routed
// product-form solves) must reproduce these values exactly.
func legacyMeasures(t *testing.T, s *scenario.Spec) []scenario.Measure {
	t.Helper()
	sc := func(name string, v float64) scenario.Measure { return scenario.Measure{Name: name, Value: v} }
	ci := func(name string, c stats.CI) scenario.Measure {
		return scenario.Measure{Name: name, Value: c.Mean, HalfWidth: c.HalfWidth}
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("legacy evaluation: %v", err)
		}
	}
	switch s.Discipline {
	case "slotted":
		thr, err := slotted.Throughput(s.Topology.N1, s.Topology.N2, s.Params.Load)
		must(err)
		acc, err := slotted.AcceptanceProbability(s.Topology.N1, s.Topology.N2, s.Params.Load)
		must(err)
		ms := []scenario.Measure{sc("throughput", thr), sc("acceptance", acc)}
		if s.Sim.Slots > 0 {
			r, err := slotted.Simulate(s.Topology.N1, s.Topology.N2, s.Params.Load, s.Sim.Slots, s.Sim.Seed)
			must(err)
			ms = append(ms, ci("sim_per_output", r.PerOutput), ci("sim_acceptance", r.Acceptance),
				sc("sim_offered", float64(r.Offered)))
		}
		return ms

	case "clos":
		net := clos.Network{M: s.Topology.M, N: s.Topology.N, R: s.Topology.R}
		lee, err := net.LeeBlocking(s.Params.Load)
		must(err)
		strict := 0.0
		if net.StrictSenseNonblocking() {
			strict = 1
		}
		ms := []scenario.Measure{
			sc("nonblocking_strict", strict),
			sc("crosspoints", float64(net.Crosspoints())),
			sc("crossbar_crosspoints", float64(net.CrossbarCrosspoints())),
			sc("lee_blocking", lee),
		}
		if s.Sim.Horizon > 0 {
			pol := map[string]clos.Policy{
				"": clos.RandomAvailable, "random-available": clos.RandomAvailable,
				"first-fit": clos.FirstFit, "random-try": clos.RandomTry,
			}[s.Params.Policy]
			r, err := clos.Simulate(net, clos.SimConfig{
				PerInputLoad: s.Params.Load, Mu: s.Params.Mu, Policy: pol,
				Seed: s.Sim.Seed, Warmup: s.Sim.Warmup, Horizon: s.Sim.Horizon, Batches: s.Sim.Batches,
			})
			must(err)
			ms = append(ms, ci("sim_call_blocking", r.CallBlocking), ci("sim_internal_blocking", r.InternalBlocking),
				sc("sim_link_utilization", r.LinkUtilization), sc("sim_events", float64(r.Events)))
		}
		return ms

	case "wdm":
		p := wdm.Path{L: s.Topology.L, W: s.Topology.W, Rate: s.Params.Rate, CrossRate: s.Params.CrossRate, Mu: s.Params.Mu}
		conv, err := p.ConversionBlocking()
		must(err)
		cont, err := p.ContinuityBlocking()
		must(err)
		gain, err := wdm.ConversionGain(p)
		must(err)
		ms := []scenario.Measure{
			sc("conversion_blocking", conv), sc("continuity_blocking", cont),
			sc("link_utilization", p.LinkUtilization()), sc("conversion_gain", gain),
		}
		if s.Sim.Horizon > 0 {
			asg := map[string]wdm.Assignment{"": wdm.FirstFit, "first-fit": wdm.FirstFit, "random-fit": wdm.RandomFit}[s.Params.Policy]
			r, err := wdm.Simulate(p, wdm.SimConfig{
				Converters: s.Params.Converters, Assignment: asg,
				Seed: s.Sim.Seed, Warmup: s.Sim.Warmup, Horizon: s.Sim.Horizon, Batches: s.Sim.Batches,
			})
			must(err)
			ms = append(ms, ci("sim_e2e_blocking", r.EndToEndBlocking), ci("sim_cross_blocking", r.CrossBlocking),
				sc("sim_utilization", r.Utilization), sc("sim_events", float64(r.Events)))
		}
		return ms

	case "overflow":
		r, err := overflow.Run(overflow.Config{
			PrimaryN: s.Topology.N1, SecondaryN: s.Params.SecondaryN,
			Lambda: s.Params.Lambda, Mu: s.Params.Mu,
			Seed: s.Sim.Seed, Warmup: s.Sim.Warmup, Horizon: s.Sim.Horizon, Batches: s.Sim.Batches,
		})
		must(err)
		ms := []scenario.Measure{
			ci("sim_primary_blocking", r.PrimaryBlocking),
			ci("sim_secondary_blocking", r.SecondaryBlocking),
			sc("overflow_mean", r.OverflowMean),
			sc("overflow_peakedness", r.OverflowPeakedness),
			sc("sim_events", float64(r.Events)),
		}
		if r.OverflowMean > 0 && r.OverflowPeakedness > 0 {
			bpp, err := overflow.SecondaryBPPApprox(s.Params.SecondaryN, r.OverflowMean, r.OverflowPeakedness, s.Params.Mu)
			must(err)
			pois, err := overflow.SecondaryPoissonApprox(s.Params.SecondaryN, r.OverflowMean, s.Params.Mu)
			must(err)
			cc, err := overflow.SecondaryBPPCallCongestion(s.Params.SecondaryN, r.OverflowMean, r.OverflowPeakedness, s.Params.Mu)
			must(err)
			ms = append(ms, sc("bpp_secondary_blocking", bpp), sc("poisson_secondary_blocking", pois),
				sc("bpp_call_congestion", cc))
		}
		return ms

	case "retrial":
		r, err := retrial.Run(retrial.Config{
			N1: s.Topology.N1, N2: s.Topology.N2, Lambda: s.Params.Lambda, Mu: s.Params.Mu,
			RetryRate: s.Params.RetryRate, MaxAttempts: s.Params.MaxAttempts,
			Seed: s.Sim.Seed, Warmup: s.Sim.Warmup, Horizon: s.Sim.Horizon, Batches: s.Sim.Batches,
		})
		must(err)
		cleared, err := retrial.ClearedBlocking(s.Topology.N1, s.Topology.N2, s.Params.Lambda, s.Params.Mu)
		must(err)
		return []scenario.Measure{
			ci("sim_abandonment", r.Abandonment),
			ci("sim_first_attempt_blocking", r.FirstAttemptBlocking),
			sc("mean_attempts", r.MeanAttempts),
			sc("mean_orbit", r.MeanOrbit),
			ci("sim_concurrency", r.Concurrency),
			sc("sim_events", float64(r.Events)),
			sc("cleared_blocking", cleared),
		}

	case "hotspot":
		m := hotspot.Model{N1: s.Topology.N1, N2: s.Topology.N2, Lambda: s.Params.Lambda, Mu: s.Params.Mu, HotFraction: s.Params.HotFraction}
		res, err := hotspot.Solve(m)
		must(err)
		ms := []scenario.Measure{
			sc("hot_nonblocking", res.HotNonBlocking), sc("cold_nonblocking", res.ColdNonBlocking),
			sc("nonblocking", res.NonBlocking), sc("hot_utilization", res.HotUtilization),
			sc("mean_busy", res.MeanBusy),
		}
		if s.Sim.Horizon > 0 {
			sr, err := hotspot.Simulate(m, hotspot.SimConfig{Seed: s.Sim.Seed, Warmup: s.Sim.Warmup, Horizon: s.Sim.Horizon, Batches: s.Sim.Batches})
			must(err)
			ms = append(ms, ci("sim_hot_blocking", sr.HotBlocking), ci("sim_cold_blocking", sr.ColdBlocking),
				ci("sim_all_blocking", sr.AllBlocking), ci("sim_mean_busy", sr.MeanBusy),
				sc("sim_events", float64(sr.Events)))
		}
		return ms

	case "inputq":
		d := map[string]inputq.Discipline{"": inputq.InputQueued, "input-queued": inputq.InputQueued, "output-queued": inputq.OutputQueued}[s.Params.Policy]
		r, err := inputq.Run(inputq.Config{
			N: s.Topology.N1, Load: s.Params.Load, Discipline: d,
			Slots: s.Sim.Slots, QueueCap: s.Sim.QueueCap, Seed: s.Sim.Seed,
		})
		must(err)
		return []scenario.Measure{
			sc("saturation_hol", inputq.SaturationHOL()),
			ci("throughput", r.Throughput),
			sc("mean_delay", r.MeanDelay),
			sc("dropped", float64(r.Dropped)),
			sc("delivered", float64(r.Delivered)),
		}

	case "minnet":
		rec, err := minnet.Recursion(s.Topology.N1, s.Params.Load)
		must(err)
		adv, err := minnet.CrossbarAdvantage(s.Topology.N1, s.Params.Load)
		must(err)
		ms := []scenario.Measure{sc("recursion_throughput", rec), sc("crossbar_advantage", adv)}
		if s.Sim.Slots > 0 {
			r, err := minnet.Simulate(s.Topology.N1, s.Params.Load, s.Sim.Slots, s.Sim.Seed)
			must(err)
			ms = append(ms, ci("sim_per_output", r.PerOutput),
				sc("sim_delivered", float64(r.Delivered)), sc("sim_offered", float64(r.Offered)))
		}
		return ms

	case "link":
		classes := make([]link.Class, len(s.Classes))
		for i, c := range s.Classes {
			classes[i] = link.Class{Name: c.Name, A: c.A, Alpha: c.Alpha, Beta: c.Beta, Mu: c.Mu}
		}
		res, err := link.Solve(link.Link{C: s.Topology.C, Classes: classes})
		must(err)
		var ms []scenario.Measure
		for i := range s.Classes {
			ms = append(ms, sc(fmt.Sprintf("blocking_%d", i), res.Blocking[i]))
		}
		for i := range s.Classes {
			ms = append(ms, sc(fmt.Sprintf("concurrency_%d", i), res.Concurrency[i]))
		}
		return ms

	case "transient":
		classes := make([]core.Class, len(s.Classes))
		for i, c := range s.Classes {
			classes[i] = core.Class{Name: c.Name, A: c.A, Alpha: c.Alpha, Beta: c.Beta, Mu: c.Mu}
		}
		chain, err := statespace.NewChain(core.Switch{N1: s.Topology.N1, N2: s.Topology.N2, Classes: classes}, scenario.DefaultLimits.MaxStates)
		must(err)
		pi0, err := transient.EmptyStart(chain)
		must(err)
		traj, err := transient.BlockingTrajectory(chain, pi0, s.Params.Class, s.Params.Times, transient.Options{})
		must(err)
		var ms []scenario.Measure
		for i, v := range traj {
			ms = append(ms, sc(fmt.Sprintf("blocking_t%d", i), v))
		}
		return ms
	}
	t.Fatalf("legacyMeasures: no oracle for discipline %q", s.Discipline)
	return nil
}

func loadCorpus(t *testing.T) map[string]*scenario.Spec {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty scenario corpus")
	}
	specs := make(map[string]*scenario.Spec, len(files))
	for _, f := range files {
		raw, err := os.Open(f)
		if err != nil {
			t.Fatal(err)
		}
		s, err := scenario.Decode(raw)
		raw.Close()
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		specs[filepath.Base(f)] = s
	}
	return specs
}

// reportEntry is one corpus spec's outcome in the CI artifact. Values
// are hex-exact (strconv 'x') so the report is diffable across runs
// and immune to JSON's NaN/Inf marshaling limits.
type reportEntry struct {
	File       string   `json:"file"`
	Discipline string   `json:"discipline"`
	Key        string   `json:"key"`
	Match      bool     `json:"match"`
	Measures   []string `json:"measures"`
	Mismatch   string   `json:"mismatch,omitempty"`
}

// TestCorpusConformance is the CI scenario-conformance gate: every
// checked-in spec must cover a registered discipline, evaluate through
// scenario.Evaluate, and agree bit-for-bit with the legacy entry
// points.
func TestCorpusConformance(t *testing.T) {
	specs := loadCorpus(t)
	covered := make(map[string]bool)
	var report []reportEntry

	files := make([]string, 0, len(specs))
	for f := range specs {
		files = append(files, f)
	}
	sort.Strings(files)

	e := scenario.New(scenario.Options{})
	for _, f := range files {
		s := specs[f]
		covered[s.Discipline] = true
		entry := reportEntry{File: f, Discipline: s.Discipline, Key: s.Key()}

		got, err := e.Evaluate(s)
		if err != nil {
			entry.Mismatch = fmt.Sprintf("Evaluate: %v", err)
			report = append(report, entry)
			t.Errorf("%s: Evaluate: %v", f, err)
			continue
		}
		want := legacyMeasures(t, s)
		entry.Match = true
		for _, m := range got.Measures {
			entry.Measures = append(entry.Measures, fmt.Sprintf("%s=%s:%s", m.Name,
				strconv.FormatFloat(m.Value, 'x', -1, 64),
				strconv.FormatFloat(m.HalfWidth, 'x', -1, 64)))
		}
		if len(got.Measures) != len(want) {
			entry.Match = false
			entry.Mismatch = fmt.Sprintf("measure count %d, legacy %d", len(got.Measures), len(want))
		} else {
			for i, m := range got.Measures {
				w := want[i]
				// Bit-identity: compare the exact float encodings, which
				// (unlike ==) also holds NaN to NaN.
				if m.Name != w.Name ||
					strconv.FormatFloat(m.Value, 'x', -1, 64) != strconv.FormatFloat(w.Value, 'x', -1, 64) ||
					strconv.FormatFloat(m.HalfWidth, 'x', -1, 64) != strconv.FormatFloat(w.HalfWidth, 'x', -1, 64) {
					entry.Match = false
					entry.Mismatch = fmt.Sprintf("measure %d: got %s=%v±%v, legacy %s=%v±%v",
						i, m.Name, m.Value, m.HalfWidth, w.Name, w.Value, w.HalfWidth)
					break
				}
			}
		}
		if !entry.Match {
			t.Errorf("%s: %s", f, entry.Mismatch)
		}
		report = append(report, entry)
	}

	for _, d := range scenario.Disciplines() {
		if !covered[d] {
			t.Errorf("corpus has no spec for discipline %q", d)
		}
	}

	if *conformanceReport != "" {
		out, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(*conformanceReport, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAdapterPropertyPins strengthens the corpus with programmatic
// sweeps: several operating points per discipline, each pinned
// bit-identical to the legacy path.
func TestAdapterPropertyPins(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	e := scenario.New(scenario.Options{})
	var specs []*scenario.Spec
	for _, load := range []float64{0.2, 0.5, 0.95} {
		specs = append(specs,
			&scenario.Spec{Discipline: "slotted", Topology: scenario.Topology{N1: 8, N2: 12},
				Params: scenario.Params{Load: load}, Sim: scenario.Sim{Seed: 11, Slots: 400}},
			&scenario.Spec{Discipline: "clos", Topology: scenario.Topology{M: 4, N: 3, R: 3},
				Params: scenario.Params{Load: load, Mu: 1, Policy: "random-try"},
				Sim:    scenario.Sim{Seed: 12, Warmup: 10, Horizon: 100}},
			&scenario.Spec{Discipline: "inputq", Topology: scenario.Topology{N1: 4},
				Params: scenario.Params{Load: load, Policy: "output-queued"},
				Sim:    scenario.Sim{Seed: 13, Slots: 400, QueueCap: 64}},
			&scenario.Spec{Discipline: "minnet", Topology: scenario.Topology{N1: 8},
				Params: scenario.Params{Load: load}, Sim: scenario.Sim{Seed: 14, Slots: 400}},
			&scenario.Spec{Discipline: "hotspot", Topology: scenario.Topology{N1: 6, N2: 6},
				Params: scenario.Params{Lambda: 12 * load, Mu: 1, HotFraction: 0.4}},
		)
	}
	specs = append(specs,
		&scenario.Spec{Discipline: "wdm", Topology: scenario.Topology{L: 2, W: 4},
			Params: scenario.Params{Rate: 2, CrossRate: 0.5, Mu: 1},
			Sim:    scenario.Sim{Seed: 15, Warmup: 10, Horizon: 100}},
		&scenario.Spec{Discipline: "overflow", Topology: scenario.Topology{N1: 6},
			Params: scenario.Params{Lambda: 30, Mu: 1, SecondaryN: 4},
			Sim:    scenario.Sim{Seed: 16, Warmup: 10, Horizon: 150}},
		&scenario.Spec{Discipline: "retrial", Topology: scenario.Topology{N1: 4, N2: 4},
			Params: scenario.Params{Lambda: 12, Mu: 1, RetryRate: 3, MaxAttempts: 2},
			Sim:    scenario.Sim{Seed: 17, Warmup: 10, Horizon: 150}},
		&scenario.Spec{Discipline: "link", Topology: scenario.Topology{C: 10},
			Classes: []scenario.Class{{A: 1, Alpha: 4, Mu: 1}, {A: 2, Alpha: 1, Beta: 0.3, Mu: 0.5}}},
		&scenario.Spec{Discipline: "transient", Topology: scenario.Topology{N1: 3, N2: 3},
			Classes: []scenario.Class{{A: 1, Alpha: 0.4, Mu: 1}},
			Params:  scenario.Params{Class: 0, Times: []float64{0.5, 2}}},
	)
	for i, s := range specs {
		got, err := e.Evaluate(s)
		if err != nil {
			t.Fatalf("spec %d (%s): %v", i, s.Discipline, err)
		}
		want := legacyMeasures(t, s)
		if len(got.Measures) != len(want) {
			t.Fatalf("spec %d (%s): %d measures, legacy %d", i, s.Discipline, len(got.Measures), len(want))
		}
		for j := range want {
			g, w := got.Measures[j], want[j]
			if g != w {
				t.Errorf("spec %d (%s) measure %d: got %+v, legacy %+v", i, s.Discipline, j, g, w)
			}
		}
		e.PutResult(got)
	}
}
