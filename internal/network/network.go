// Package network models the application domain of the paper's
// introduction: an all-optical circuit-switching network whose
// intermediate nodes are asynchronous, unbuffered crossbars and whose
// routing decisions live entirely at the periphery (source routing).
// A connection request names its whole path; at each hop it must seize
// one idle input and one idle output of that hop's crossbar, the setup
// is atomic, and a request that finds any hop busy is cleared
// end-to-end — exactly the blocked-calls-cleared discipline of the
// single-switch model, lifted to a path.
//
// Two evaluations are provided:
//
//   - FixedPoint: the reduced-load (Erlang fixed point) approximation
//     in the tradition of Kelly [20]: each switch sees the Poisson
//     load of its routes thinned by the blocking of the other hops,
//     and per-switch blocking comes from the single-switch analytical
//     model (internal/core);
//   - Simulate: an exact event-driven simulation of the whole network.
package network

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"
	"sort"

	"xbar/internal/combin"
	"xbar/internal/core"
	"xbar/internal/eventq"
	"xbar/internal/grid"
	"xbar/internal/rng"
	"xbar/internal/stats"
)

// Dim gives one crossbar's dimensions.
type Dim struct{ N1, N2 int }

// Route is a source-routed path with Poisson connection arrivals.
type Route struct {
	Name string
	// Path lists the switch indices traversed, in order.
	Path []int
	// Rate is the Poisson arrival rate of connection requests.
	Rate float64
	// Mu is the service rate; holding time is exponential with mean
	// 1/Mu (insensitivity extends to general distributions).
	Mu float64
	// Bandwidth is the multi-rate requirement a_r: the number of
	// inputs and outputs seized at EVERY hop. Zero means 1.
	Bandwidth int
}

// bw returns the effective bandwidth (zero value means one).
func (r Route) bw() int {
	if r.Bandwidth == 0 {
		return 1
	}
	return r.Bandwidth
}

// Network is a set of crossbar switches and the routes over them.
type Network struct {
	Switches []Dim
	Routes   []Route
}

// Validate checks structural constraints.
func (n Network) Validate() error {
	if len(n.Switches) == 0 {
		return fmt.Errorf("network: no switches")
	}
	for i, d := range n.Switches {
		if d.N1 < 1 || d.N2 < 1 {
			return fmt.Errorf("network: switch %d is %dx%d", i, d.N1, d.N2)
		}
	}
	if len(n.Routes) == 0 {
		return fmt.Errorf("network: no routes")
	}
	for i, r := range n.Routes {
		if len(r.Path) == 0 {
			return fmt.Errorf("network: route %d has empty path", i)
		}
		for _, s := range r.Path {
			if s < 0 || s >= len(n.Switches) {
				return fmt.Errorf("network: route %d references switch %d of %d", i, s, len(n.Switches))
			}
		}
		seen := make(map[int]bool)
		for _, s := range r.Path {
			if seen[s] {
				return fmt.Errorf("network: route %d visits switch %d twice", i, s)
			}
			seen[s] = true
		}
		if r.Rate <= 0 || r.Mu <= 0 {
			return fmt.Errorf("network: route %d: rate %v, mu %v", i, r.Rate, r.Mu)
		}
		if r.Bandwidth < 0 {
			return fmt.Errorf("network: route %d: bandwidth %d", i, r.Bandwidth)
		}
		for _, s := range r.Path {
			d := n.Switches[s]
			if r.bw() > d.N1 || r.bw() > d.N2 {
				return fmt.Errorf("network: route %d: bandwidth %d exceeds switch %d (%dx%d)",
					i, r.bw(), s, d.N1, d.N2)
			}
		}
	}
	return nil
}

// FPResult is the fixed-point solution.
type FPResult struct {
	// SwitchBlocking[s] is the per-hop blocking of bandwidth-1 traffic
	// at switch s under the reduced-load approximation (kept for the
	// common single-rate case; see ClassBlocking for multi-rate).
	SwitchBlocking []float64
	// ClassBlocking[s][a] is the per-hop blocking of bandwidth-a
	// traffic at switch s, for each bandwidth offered there.
	ClassBlocking []map[int]float64
	// RouteBlocking[i] = 1 - prod over hops of (1 - B_{s, a_i}).
	RouteBlocking []float64
	// SwitchLoad[s] is the thinned offered load (erlangs, in calls) at
	// switch s.
	SwitchLoad []float64
	// Iterations taken to converge.
	Iterations int
	// Grid is the evaluation engine's accounting for the whole run:
	// every per-switch solve of every iteration is one grid point, so
	// the hit rate reports how much of the fixed point's work was
	// shared (symmetric switches within an iteration, switches whose
	// thinned load did not move between iterations).
	Grid grid.Stats
}

// FPConfig parameterizes FixedPointWith.
type FPConfig struct {
	// Tol bounds the largest per-switch blocking change at convergence.
	Tol float64
	// MaxIter guards against oscillation.
	MaxIter int
	// Fill configures the per-switch lattice fills (workers, tile).
	Fill core.Options
	// NoMemo switches the evaluation engine to its full-fill fallback:
	// every per-switch solve pays its own lattice fill, as the
	// pre-engine code did. The fixed point's results are bit-identical
	// either way (the grid package's property tests pin both paths to
	// fresh core.Solve); the flag exists for A/B benchmarking and as an
	// escape hatch.
	NoMemo bool
}

// FixedPoint solves the reduced-load approximation by successive
// substitution. tol bounds the largest per-switch blocking change at
// convergence; maxIter guards against oscillation. An optional
// core.Options configures the per-switch lattice fills (e.g.
// core.Parallel for the wavefront schedule on large switches).
func FixedPoint(n Network, tol float64, maxIter int, opts ...core.Options) (*FPResult, error) {
	cfg := FPConfig{Tol: tol, MaxIter: maxIter}
	if len(opts) > 0 {
		cfg.Fill = opts[0]
	}
	return FixedPointWith(n, cfg)
}

// FixedPointWith is FixedPoint with the full configuration surface.
// Each iteration re-solves every switch under re-thinned loads; the
// solves go through one grid.Engine, so switches that are symmetric
// (identical dimensions and thinned per-class loads — the IEEE
// product (1-b1)(1-b2) is commutative bit-exactly, so symmetric hops
// of a route thin identically) share one lattice fill per iteration,
// and a switch whose load did not move since an earlier iteration
// pays a map lookup instead of a fill.
func FixedPointWith(n Network, cfg FPConfig) (*FPResult, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if cfg.Tol <= 0 {
		return nil, fmt.Errorf("network: tolerance %v", cfg.Tol)
	}
	if cfg.MaxIter < 1 {
		return nil, fmt.Errorf("network: maxIter %d", cfg.MaxIter)
	}
	nS := len(n.Switches)
	// b[s][a] is the hop blocking of bandwidth-a traffic at switch s.
	b := make([]map[int]float64, nS)
	for s := range b {
		b[s] = make(map[int]float64)
	}
	hopB := func(s, a int) float64 { return b[s][a] } // zero until solved
	load := make([]float64, nS)
	classLoad := make([]map[int]float64, nS)
	eng := grid.New(grid.Options{Workers: cfg.Fill.Workers, Tile: cfg.Fill.Tile, NoMemo: cfg.NoMemo})
	var iter int
	for iter = 1; iter <= cfg.MaxIter; iter++ {
		// Thinned offered loads, split by bandwidth class.
		for s := range load {
			load[s] = 0
			classLoad[s] = make(map[int]float64)
		}
		for _, r := range n.Routes {
			erl := r.Rate / r.Mu
			a := r.bw()
			for _, s := range r.Path {
				thin := 1.0
				for _, s2 := range r.Path {
					if s2 != s {
						thin *= 1 - hopB(s2, a)
					}
				}
				load[s] += erl * thin
				classLoad[s][a] += erl * thin
			}
		}
		// Per-switch multi-class blocking from the single-switch model,
		// batched: the whole iteration is one grid solve.
		newB, err := iterationBlocking(eng, n.Switches, classLoad)
		if err != nil {
			return nil, err
		}
		worst := 0.0
		for s := range newB {
			for a, nb := range newB[s] {
				if diff := math.Abs(nb - b[s][a]); diff > worst {
					worst = diff
				}
			}
			b[s] = newB[s]
		}
		if worst < cfg.Tol {
			break
		}
	}
	if iter > cfg.MaxIter {
		return nil, fmt.Errorf("network: fixed point did not converge in %d iterations", cfg.MaxIter)
	}
	res := &FPResult{
		SwitchBlocking: make([]float64, nS),
		ClassBlocking:  b,
		SwitchLoad:     load,
		RouteBlocking:  make([]float64, len(n.Routes)),
		Iterations:     iter,
		Grid:           eng.Stats(),
	}
	for s := range b {
		res.SwitchBlocking[s] = b[s][1]
	}
	for i, r := range n.Routes {
		pass := 1.0
		for _, s := range r.Path {
			pass *= 1 - hopB(s, r.bw())
		}
		res.RouteBlocking[i] = 1 - pass
	}
	return res, nil
}

// switchModel builds the single-switch model for one crossbar offered
// Poisson traffic split into bandwidth classes (erlangs per class,
// spread uniformly over the class's ordered routes). The bandwidths
// are visited in sorted order — map iteration order would otherwise
// vary the classes' positions between runs and perturb the fill's
// float rounding, breaking run-to-run determinism. Zero-load
// bandwidths are resolved immediately (out[a] = 0); order lists the
// bandwidth behind each model class, and a switch with no loaded
// class yields an empty model (len(order) == 0).
func switchModel(d Dim, classErlangs map[int]float64) (sw core.Switch, order []int, out map[int]float64) {
	out = make(map[int]float64, len(classErlangs))
	sw = core.Switch{N1: d.N1, N2: d.N2}
	bandwidths := make([]int, 0, len(classErlangs))
	for a := range classErlangs {
		bandwidths = append(bandwidths, a)
	}
	sort.Ints(bandwidths)
	for _, a := range bandwidths {
		erl := classErlangs[a]
		if erl <= 0 {
			out[a] = 0
			continue
		}
		routes := combin.Perm(d.N1, a) * combin.Perm(d.N2, a)
		sw.Classes = append(sw.Classes, core.Class{A: a, Alpha: erl / routes, Mu: 1})
		order = append(order, a)
	}
	return sw, order, out
}

// iterationBlocking evaluates one fixed-point iteration's per-switch
// blocking as a single grid solve: equal switch models within the
// iteration (symmetry) and across iterations (stable loads) share one
// lattice fill through the engine. The iteration carries a pprof
// label so `make profile` attributes fixed-point time per phase.
func iterationBlocking(eng *grid.Engine, dims []Dim, classLoad []map[int]float64) ([]map[int]float64, error) {
	newB := make([]map[int]float64, len(dims))
	orders := make([][]int, len(dims))
	var points []core.Switch
	var slots []int // points[k] models switch slots[k]
	for s, d := range dims {
		sw, order, out := switchModel(d, classLoad[s])
		newB[s] = out
		orders[s] = order
		if len(order) > 0 {
			points = append(points, sw)
			slots = append(slots, s)
		}
	}
	if len(points) == 0 {
		return newB, nil
	}
	var results []*core.Result
	var err error
	pprof.Do(context.Background(), pprof.Labels("xbar_phase", "fixedpoint_iteration"), func(context.Context) {
		results, err = eng.Solve(points)
	})
	if err != nil {
		return nil, err
	}
	for k, res := range results {
		s := slots[k]
		for i, a := range orders[s] {
			newB[s][a] = res.Blocking[i]
		}
	}
	return newB, nil
}

// SimConfig parameterizes a network simulation.
type SimConfig struct {
	Seed    uint64
	Warmup  float64
	Horizon float64
	Batches int
}

// SimResult reports simulated end-to-end measures.
type SimResult struct {
	// RouteBlocking[i] is the measured end-to-end blocking of route i
	// (call congestion = time congestion by PASTA).
	RouteBlocking []stats.CI
	// Offered and Blocked count requests per route.
	Offered, Blocked []int64
	// Events is the number of processed events.
	Events int64
}

type netDeparture struct {
	route int
	// ins[h]/outs[h] are the port sets held at hop h (bandwidth entries
	// per hop).
	ins, outs [][]int
}

// sampleDistinct fills out with a distinct uniform indices from [0, n)
// by rejection (a << n in every sensible configuration).
func sampleDistinct(stream *rng.Stream, n, a int, out []int) {
	for i := 0; i < a; i++ {
	redraw:
		for {
			v := stream.Intn(n)
			for j := 0; j < i; j++ {
				if out[j] == v {
					continue redraw
				}
			}
			out[i] = v
			break
		}
	}
}

// Simulate runs the event-driven network simulation.
func Simulate(n Network, cfg SimConfig) (*SimResult, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("network: horizon %v", cfg.Horizon)
	}
	batches := cfg.Batches
	if batches == 0 {
		batches = 20
	}
	if batches < 2 {
		return nil, fmt.Errorf("network: need >= 2 batches")
	}
	stream := rng.NewStream(cfg.Seed)
	busyIn := make([][]bool, len(n.Switches))
	busyOut := make([][]bool, len(n.Switches))
	for s, d := range n.Switches {
		busyIn[s] = make([]bool, d.N1)
		busyOut[s] = make([]bool, d.N2)
	}
	// Next Poisson arrival per route.
	nextArr := make([]float64, len(n.Routes))
	for i, r := range n.Routes {
		nextArr[i] = stream.Exp(r.Rate)
	}
	var deps eventq.Queue[netDeparture]

	start := cfg.Warmup
	end := cfg.Warmup + cfg.Horizon
	batchLen := cfg.Horizon / float64(batches)
	offered := make([][]int64, len(n.Routes))
	blocked := make([][]int64, len(n.Routes))
	for i := range n.Routes {
		offered[i] = make([]int64, batches)
		blocked[i] = make([]int64, batches)
	}
	batchOf := func(t float64) int {
		if t < start || t >= end {
			return -1
		}
		b := int((t - start) / batchLen)
		if b >= batches {
			b = batches - 1
		}
		return b
	}

	var events int64
	now := 0.0
	for {
		t := math.Inf(1)
		kind := -1
		for i := range nextArr {
			if nextArr[i] < t {
				t = nextArr[i]
				kind = i
			}
		}
		if at, ok := deps.PeekTime(); ok && at < t {
			t = at
			kind = -2
		}
		if t >= end {
			break
		}
		now = t
		events++
		if kind == -2 {
			_, d := deps.Pop()
			r := n.Routes[d.route]
			for h, s := range r.Path {
				for _, p := range d.ins[h] {
					busyIn[s][p] = false
				}
				for _, p := range d.outs[h] {
					busyOut[s][p] = false
				}
			}
			continue
		}
		// Arrival on route kind: seize bandwidth distinct inputs and
		// outputs at every hop, atomically or not at all.
		r := n.Routes[kind]
		a := r.bw()
		nextArr[kind] = now + stream.Exp(r.Rate)
		if b := batchOf(now); b >= 0 {
			offered[kind][b]++
		}
		ins := make([][]int, len(r.Path))
		outs := make([][]int, len(r.Path))
		ok := true
		for h, s := range r.Path {
			ins[h] = make([]int, a)
			outs[h] = make([]int, a)
			sampleDistinct(stream, n.Switches[s].N1, a, ins[h])
			sampleDistinct(stream, n.Switches[s].N2, a, outs[h])
			for i := 0; i < a; i++ {
				if busyIn[s][ins[h][i]] || busyOut[s][outs[h][i]] {
					ok = false
				}
			}
		}
		if !ok {
			if b := batchOf(now); b >= 0 {
				blocked[kind][b]++
			}
			continue
		}
		for h, s := range r.Path {
			for i := 0; i < a; i++ {
				busyIn[s][ins[h][i]] = true
				busyOut[s][outs[h][i]] = true
			}
		}
		deps.Push(now+stream.Exp(r.Mu), netDeparture{route: kind, ins: ins, outs: outs})
	}

	res := &SimResult{
		RouteBlocking: make([]stats.CI, len(n.Routes)),
		Offered:       make([]int64, len(n.Routes)),
		Blocked:       make([]int64, len(n.Routes)),
		Events:        events,
	}
	for i := range n.Routes {
		var ratios []float64
		for b := 0; b < batches; b++ {
			res.Offered[i] += offered[i][b]
			res.Blocked[i] += blocked[i][b]
			if offered[i][b] > 0 {
				ratios = append(ratios, float64(blocked[i][b])/float64(offered[i][b]))
			}
		}
		if len(ratios) >= 2 {
			res.RouteBlocking[i] = stats.BatchMeans(ratios, 0.95)
		} else {
			res.RouteBlocking[i] = stats.CI{Mean: math.NaN(), HalfWidth: math.Inf(1), Level: 0.95}
		}
	}
	return res, nil
}
