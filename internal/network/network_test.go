package network

import (
	"math"
	"reflect"
	"testing"

	"xbar/internal/core"
	"xbar/internal/grid"
)

func TestValidation(t *testing.T) {
	bad := []Network{
		{},
		{Switches: []Dim{{4, 4}}},
		{Switches: []Dim{{0, 4}}, Routes: []Route{{Path: []int{0}, Rate: 1, Mu: 1}}},
		{Switches: []Dim{{4, 4}}, Routes: []Route{{Path: []int{}, Rate: 1, Mu: 1}}},
		{Switches: []Dim{{4, 4}}, Routes: []Route{{Path: []int{1}, Rate: 1, Mu: 1}}},
		{Switches: []Dim{{4, 4}}, Routes: []Route{{Path: []int{0, 0}, Rate: 1, Mu: 1}}},
		{Switches: []Dim{{4, 4}}, Routes: []Route{{Path: []int{0}, Rate: 0, Mu: 1}}},
		{Switches: []Dim{{4, 4}}, Routes: []Route{{Path: []int{0}, Rate: 1, Mu: 0}}},
	}
	for i, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("case %d: invalid network accepted", i)
		}
	}
}

// TestSingleSwitchReducesToCore: a one-hop network is exactly the
// single-switch model — the fixed point needs no approximation and the
// simulator must agree with the analytics.
func TestSingleSwitchReducesToCore(t *testing.T) {
	net := Network{
		Switches: []Dim{{4, 4}},
		Routes:   []Route{{Name: "only", Path: []int{0}, Rate: 0.8, Mu: 1}},
	}
	fp, err := FixedPoint(net, 1e-12, 100)
	if err != nil {
		t.Fatal(err)
	}
	sw := core.Switch{N1: 4, N2: 4, Classes: []core.Class{{A: 1, Alpha: 0.8 / 16, Mu: 1}}}
	want, err := core.Solve(sw)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fp.RouteBlocking[0]-want.Blocking[0]) > 1e-10 {
		t.Errorf("fixed point %v, analytic %v", fp.RouteBlocking[0], want.Blocking[0])
	}
	res, err := Simulate(net, SimConfig{Seed: 1, Warmup: 2000, Horizon: 40000})
	if err != nil {
		t.Fatal(err)
	}
	ci := res.RouteBlocking[0]
	if math.Abs(ci.Mean-want.Blocking[0]) > 2*ci.HalfWidth {
		t.Errorf("simulated %v inconsistent with analytic %v", ci, want.Blocking[0])
	}
}

func tandem() Network {
	return Network{
		Switches: []Dim{{4, 4}, {4, 4}, {4, 4}},
		Routes: []Route{
			{Name: "long", Path: []int{0, 1, 2}, Rate: 0.5, Mu: 1},
			{Name: "left", Path: []int{0}, Rate: 0.6, Mu: 1},
			{Name: "right", Path: []int{2}, Rate: 0.6, Mu: 1},
		},
	}
}

// TestFixedPointStructure: longer paths block more; hop loads reflect
// thinning; iteration converges.
func TestFixedPointStructure(t *testing.T) {
	fp, err := FixedPoint(tandem(), 1e-10, 200)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Iterations < 2 {
		t.Errorf("suspiciously fast convergence: %d iterations", fp.Iterations)
	}
	if !(fp.RouteBlocking[0] > fp.RouteBlocking[1]) {
		t.Errorf("3-hop route blocking %v should exceed 1-hop %v",
			fp.RouteBlocking[0], fp.RouteBlocking[1])
	}
	// Middle switch carries only the long route; edge switches carry
	// more load.
	if !(fp.SwitchLoad[1] < fp.SwitchLoad[0]) {
		t.Errorf("middle load %v should be below edge load %v", fp.SwitchLoad[1], fp.SwitchLoad[0])
	}
	// Route blocking is the complement of the product of hop passes.
	pass := 1.0
	for _, s := range []int{0, 1, 2} {
		pass *= 1 - fp.SwitchBlocking[s]
	}
	if math.Abs(fp.RouteBlocking[0]-(1-pass)) > 1e-12 {
		t.Error("route blocking is not the product form of hop blockings")
	}
}

// TestFixedPointMatchesSimulation: the reduced-load approximation
// tracks the exact simulation at moderate load.
func TestFixedPointMatchesSimulation(t *testing.T) {
	net := tandem()
	fp, err := FixedPoint(net, 1e-10, 200)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(net, SimConfig{Seed: 5, Warmup: 5000, Horizon: 120000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range net.Routes {
		ci := res.RouteBlocking[i]
		// Allow CI width plus a 15% model error margin for the
		// independence approximation.
		if math.Abs(ci.Mean-fp.RouteBlocking[i]) > 2*ci.HalfWidth+0.15*fp.RouteBlocking[i] {
			t.Errorf("route %d: simulated %v vs fixed point %v", i, ci, fp.RouteBlocking[i])
		}
	}
}

func TestFixedPointArgsValidation(t *testing.T) {
	if _, err := FixedPoint(tandem(), 0, 10); err == nil {
		t.Error("zero tolerance accepted")
	}
	if _, err := FixedPoint(tandem(), 1e-10, 0); err == nil {
		t.Error("zero maxIter accepted")
	}
	if _, err := FixedPoint(Network{}, 1e-10, 10); err == nil {
		t.Error("invalid network accepted")
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(tandem(), SimConfig{Horizon: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Simulate(tandem(), SimConfig{Horizon: 10, Batches: 1}); err == nil {
		t.Error("single batch accepted")
	}
	if _, err := Simulate(Network{}, SimConfig{Horizon: 10}); err == nil {
		t.Error("invalid network accepted")
	}
}

func TestSimulateDeterminism(t *testing.T) {
	a, err := Simulate(tandem(), SimConfig{Seed: 9, Horizon: 3000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(tandem(), SimConfig{Seed: 9, Horizon: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events || a.Offered[0] != b.Offered[0] {
		t.Error("same seed diverged")
	}
}

// TestLoadIncreasesEndToEndBlocking: scaling all route rates up raises
// every route's blocking.
func TestLoadIncreasesEndToEndBlocking(t *testing.T) {
	base := tandem()
	hot := tandem()
	for i := range hot.Routes {
		hot.Routes[i].Rate *= 4
	}
	fpBase, err := FixedPoint(base, 1e-10, 200)
	if err != nil {
		t.Fatal(err)
	}
	fpHot, err := FixedPoint(hot, 1e-10, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Routes {
		if fpHot.RouteBlocking[i] <= fpBase.RouteBlocking[i] {
			t.Errorf("route %d: blocking did not rise with load", i)
		}
	}
}

// TestMultirateRoutes: a bandwidth-2 route on the same path as a
// bandwidth-1 route blocks more at every hop, and the multirate fixed
// point tracks the exact simulation.
func TestMultirateRoutes(t *testing.T) {
	net := Network{
		Switches: []Dim{{8, 8}, {8, 8}},
		Routes: []Route{
			{Name: "narrow", Path: []int{0, 1}, Rate: 1.2, Mu: 1},
			{Name: "wide", Path: []int{0, 1}, Rate: 0.6, Mu: 1, Bandwidth: 2},
			{Name: "edge", Path: []int{0}, Rate: 1.0, Mu: 1},
		},
	}
	fp, err := FixedPoint(net, 1e-10, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !(fp.RouteBlocking[1] > fp.RouteBlocking[0]) {
		t.Errorf("wide route blocking %v should exceed narrow %v",
			fp.RouteBlocking[1], fp.RouteBlocking[0])
	}
	// Per-hop class blocking exists for both bandwidths at switch 0.
	if fp.ClassBlocking[0][2] <= fp.ClassBlocking[0][1] {
		t.Errorf("hop blocking a=2 (%v) should exceed a=1 (%v)",
			fp.ClassBlocking[0][2], fp.ClassBlocking[0][1])
	}
	res, err := Simulate(net, SimConfig{Seed: 17, Warmup: 5000, Horizon: 120000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range net.Routes {
		ci := res.RouteBlocking[i]
		if math.Abs(ci.Mean-fp.RouteBlocking[i]) > 2*ci.HalfWidth+0.2*fp.RouteBlocking[i] {
			t.Errorf("route %d: simulated %v vs fixed point %v", i, ci, fp.RouteBlocking[i])
		}
	}
}

// TestBandwidthValidation: invalid bandwidths are rejected.
func TestBandwidthValidation(t *testing.T) {
	base := tandem()
	base.Routes[0].Bandwidth = -1
	if err := base.Validate(); err == nil {
		t.Error("negative bandwidth accepted")
	}
	base = tandem()
	base.Routes[0].Bandwidth = 5 // switches are 4x4
	if err := base.Validate(); err == nil {
		t.Error("bandwidth exceeding switch accepted")
	}
}

// TestFixedPointMemoBitIdentical: the grid-engine evaluation (dedup,
// memoization, group fills) must not change the fixed point by a
// single bit relative to the full-fill fallback, which pays a fresh
// lattice per switch per iteration exactly like the pre-engine code.
func TestFixedPointMemoBitIdentical(t *testing.T) {
	nets := map[string]Network{"tandem": tandem()}
	multi := tandem()
	multi.Routes = append(multi.Routes, Route{
		Name: "wide", Path: []int{0, 1}, Rate: 0.2, Mu: 0.5, Bandwidth: 2,
	})
	nets["multirate"] = multi
	for name, net := range nets {
		t.Run(name, func(t *testing.T) {
			memo, err := FixedPointWith(net, FPConfig{Tol: 1e-10, MaxIter: 200})
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := FixedPointWith(net, FPConfig{Tol: 1e-10, MaxIter: 200, NoMemo: true})
			if err != nil {
				t.Fatal(err)
			}
			if memo.Iterations != fresh.Iterations {
				t.Fatalf("iterations differ: memo %d, fresh %d", memo.Iterations, fresh.Iterations)
			}
			memoStats, freshStats := memo.Grid, fresh.Grid
			memo.Grid, fresh.Grid = grid.Stats{}, grid.Stats{}
			if !reflect.DeepEqual(memo, fresh) {
				t.Fatalf("memoized fixed point differs from full-fill fallback:\n memo %+v\nfresh %+v", memo, fresh)
			}
			// Only the tandem has sharable structure (symmetric edge
			// switches); the multirate net's switches are all distinct,
			// and the engine must not invent sharing there.
			if name == "tandem" && memoStats.Fills >= freshStats.Fills {
				t.Fatalf("memoization saved nothing: memo %+v, fresh %+v", memoStats, freshStats)
			}
		})
	}
}

// TestFixedPointGridSharing: in the tandem network the two edge
// switches see identical thinned loads every iteration — the IEEE
// product (1-b1)(1-b2) is commutative bit-exactly — so each iteration
// solves at most two distinct models for three switches.
func TestFixedPointGridSharing(t *testing.T) {
	fp, err := FixedPoint(tandem(), 1e-10, 200)
	if err != nil {
		t.Fatal(err)
	}
	s := fp.Grid
	if s.Points != 3*fp.Iterations {
		t.Fatalf("grid points %d, want %d (3 switches x %d iterations)", s.Points, 3*fp.Iterations, fp.Iterations)
	}
	if s.BatchHits < fp.Iterations {
		t.Fatalf("edge-switch symmetry not deduplicated: %+v over %d iterations", s, fp.Iterations)
	}
	if s.Fills > 2*fp.Iterations {
		t.Fatalf("more fills than distinct models: %+v", s)
	}
}
