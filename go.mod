module xbar

go 1.22
