package main

import (
	"strings"
	"testing"
)

// TestDispatchFlag drives the large-N tier end to end from the CLI: a
// 4096-port switch no lattice fill could serve, answered with the tier
// and per-class error bounds in the report, plus the asymptotic
// revenue table.
func TestDispatchFlag(t *testing.T) {
	code, out, errOut := runCapture(t, "-n1", "4096", "-n2", "4096", "-dispatch", "auto",
		"-class", "bulk:1:1.12:0:1", "-weights", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "tier asymptotic") {
		t.Errorf("missing tier in summary line:\n%s", out)
	}
	if !strings.Contains(out, "err<=") {
		t.Errorf("missing error-bound column:\n%s", out)
	}
	if !strings.Contains(out, "revenue W(N)") || !strings.Contains(out, "shadow cost") {
		t.Errorf("missing asymptotic revenue report:\n%s", out)
	}
}

// TestDispatchExactIdentical pins SolveAuto's bit-identity promise at
// the CLI layer: below the cutoff the dispatched output matches the
// plain alg1 output except for the tier annotation.
func TestDispatchExactIdentical(t *testing.T) {
	args := []string{"-n1", "12", "-n2", "12",
		"-class", "v:1:0.01:0:1", "-class", "w:2:0.004:0.001:0.5"}
	code, plain, errOut := runCapture(t, args...)
	if code != 0 {
		t.Fatalf("plain: exit %d, stderr: %s", code, errOut)
	}
	code, dispatched, errOut := runCapture(t, append(args, "-dispatch", "auto")...)
	if code != 0 {
		t.Fatalf("dispatched: exit %d, stderr: %s", code, errOut)
	}
	if want := strings.Replace(plain, "(algorithm1)", "(algorithm1, tier exact)", 1); dispatched != want {
		t.Errorf("dispatched output differs beyond the tier tag:\n%s\nvs\n%s", dispatched, plain)
	}
}

func TestDispatchErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown policy", []string{"-dispatch", "sometimes"}},
		{"tolerance without dispatch", []string{"-tolerance", "0.1"}},
		{"dispatch with conv", []string{"-dispatch", "auto", "-alg", "conv"}},
	}
	for _, tc := range cases {
		code, _, errOut := runCapture(t, tc.args...)
		if code != 1 {
			t.Errorf("%s: exit %d, want 1 (stderr: %s)", tc.name, code, errOut)
		}
	}
}
