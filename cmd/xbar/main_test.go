package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xbar/internal/core"
	"xbar/internal/report"
	"xbar/internal/scenario"
)

func runCapture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestDefaultRun(t *testing.T) {
	code, out, errOut := runCapture(t)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "16x16 asynchronous crossbar (algorithm1)") {
		t.Errorf("missing summary line:\n%s", out)
	}
	direct, err := core.Solve(core.NewSwitch(16, 16, core.AggregateClass{Name: "default", A: 1, AlphaTilde: 0.0024, Mu: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if want := report.FormatFloat(direct.Blocking[0]); !strings.Contains(out, want) {
		t.Errorf("output missing blocking %s:\n%s", want, out)
	}
}

func TestEvaluatorsAgree(t *testing.T) {
	outputs := make(map[string]string)
	for _, alg := range []string{"alg1", "alg2", "direct", "conv"} {
		code, out, errOut := runCapture(t, "-n1", "6", "-n2", "6", "-alg", alg,
			"-class", "v:1:0.01:0:1", "-class", "w:2:0.004:0.001:0.5")
		if code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", alg, code, errOut)
		}
		// Strip the method name so the numeric tables can be compared
		// verbatim across evaluators.
		i := strings.IndexByte(out, ',')
		outputs[alg] = out[i:]
	}
	for _, alg := range []string{"alg2", "direct", "conv"} {
		if outputs[alg] != outputs["alg1"] {
			t.Errorf("%s output differs from alg1:\n%s\nvs\n%s", alg, outputs[alg], outputs["alg1"])
		}
	}
}

func TestOccupancyAndRevenue(t *testing.T) {
	code, out, errOut := runCapture(t, "-n1", "4", "-n2", "4", "-alg", "conv", "-occupancy",
		"-class", "v:1:0.01:0:1", "-weights", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "busy") {
		t.Errorf("missing occupancy table:\n%s", out)
	}
	if !strings.Contains(out, "revenue W(N)") || !strings.Contains(out, "shadow cost") {
		t.Errorf("missing revenue report:\n%s", out)
	}
}

func TestScenarioMode(t *testing.T) {
	spec := filepath.Join(t.TempDir(), "spec.json")
	doc := `{"discipline": "slotted", "topology": {"n1": 16, "n2": 16}, "params": {"load": 0.8}}`
	if err := os.WriteFile(spec, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCapture(t, "-scenario", spec)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "scenario slotted") || !strings.Contains(out, "throughput") {
		t.Errorf("missing scenario table:\n%s", out)
	}
	// The CLI answer is the engine's answer, verbatim.
	res, err := scenario.Evaluate(&scenario.Spec{
		Discipline: "slotted",
		Topology:   scenario.Topology{N1: 16, N2: 16},
		Params:     scenario.Params{Load: 0.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, ok := res.Measure("throughput")
	if !ok {
		t.Fatal("no throughput measure")
	}
	if want := report.FormatFloat(m.Value); !strings.Contains(out, want) {
		t.Errorf("output missing throughput %s:\n%s", want, out)
	}

	for name, args := range map[string][]string{
		"missing file": {"-scenario", filepath.Join(t.TempDir(), "absent.json")},
		"invalid spec": {"-scenario", spec + "\x00"},
	} {
		if code, _, errOut := runCapture(t, args...); code != 1 || errOut == "" {
			t.Errorf("%s: exit %d (stderr %q), want 1 with diagnostic", name, code, errOut)
		}
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"discipline": "quantum"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, errOut := runCapture(t, "-scenario", bad); code != 1 || !strings.Contains(errOut, "unknown discipline") {
		t.Errorf("bad discipline: exit %d, stderr %q", code, errOut)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"unknown flag", []string{"-no-such-flag"}, 2},
		{"positional args", []string{"stray"}, 2},
		{"malformed class", []string{"-class", "nope"}, 2},
		{"unknown evaluator", []string{"-alg", "alg9"}, 1},
		{"invalid model", []string{"-n1", "0"}, 1},
		{"malformed weights", []string{"-weights", "1,x"}, 1},
		{"wrong weight count", []string{"-weights", "1,2"}, 1},
	}
	for _, tc := range cases {
		code, _, errOut := runCapture(t, tc.args...)
		if code != tc.code {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", tc.name, code, tc.code, errOut)
		}
		if errOut == "" {
			t.Errorf("%s: no stderr diagnostic", tc.name)
		}
	}
}
