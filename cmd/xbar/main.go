// Command xbar is the analytical calculator for the asynchronous
// multi-rate crossbar model: it evaluates blocking, concurrency,
// throughput, utilization and (optionally) revenue measures for a
// switch and traffic mix given on the command line.
//
// Usage:
//
//	xbar -n1 128 -n2 128 \
//	     -class voice:1:0.0024:0:1 \
//	     -class video:2:0.001:0.0005:0.5 \
//	     [-alg alg1|alg2|direct|conv] [-weights 1,0.0001] [-occupancy] \
//	     [-workers n] [-tile t] [-cpuprofile f] [-memprofile f] [-trace f]
//
// -workers and -tile select the wavefront-parallel lattice fill for
// the alg1/alg2 evaluators (0 = automatic: sequential on small
// switches, parallel above the cutoff). The profiling flags write
// standard Go pprof/trace artifacts.
//
// Each -class flag is name:a:alphaTilde:betaTilde:mu in the paper's
// aggregate ("tilde") units: intensity per particular input set over
// all C(N2,a) output sets.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"xbar/internal/cli"
	"xbar/internal/core"
	"xbar/internal/report"
	"xbar/internal/revenue"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xbar", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n1 := fs.Int("n1", 16, "number of switch inputs")
	n2 := fs.Int("n2", 16, "number of switch outputs")
	alg := fs.String("alg", "alg1", "evaluator: alg1 (scaled recursion), alg2 (mean value), direct (state sum), conv (convolution)")
	weights := fs.String("weights", "", "comma-separated revenue weights, one per class; enables the revenue report")
	occupancy := fs.Bool("occupancy", false, "print the occupancy distribution (conv evaluator)")
	workers := fs.Int("workers", 0, "lattice-fill workers: 0 auto, 1 sequential, n parallel (alg1/alg2)")
	tile := fs.Int("tile", 0, "wavefront tile edge in cells (0 = automatic)")
	prof := cli.NewProfiler(fs)
	var classes cli.ClassFlag
	fs.Var(&classes, "class", "traffic class name:a:alphaTilde:betaTilde:mu (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "xbar: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "xbar:", err)
		return 1
	}

	stopProf, err := prof.Start()
	if err != nil {
		return fail(err)
	}

	if len(classes) == 0 {
		classes = cli.ClassFlag{{Name: "default", A: 1, AlphaTilde: 0.0024, Mu: 1}}
	}
	sw := core.NewSwitch(*n1, *n2, classes...)
	fill := core.Parallel(*workers, *tile)

	var res *core.Result
	switch *alg {
	case "alg1":
		res, err = core.Solve(sw, fill)
	case "alg2":
		res, err = core.SolveMVA(sw, fill)
	case "direct":
		res, err = core.SolveDirect(sw)
	case "conv":
		res, err = core.SolveConvolution(sw)
	default:
		err = fmt.Errorf("unknown evaluator %q", *alg)
	}
	if err != nil {
		return fail(err)
	}

	fmt.Fprintf(stdout, "%dx%d asynchronous crossbar (%s), ln G = %.6f, utilization %.4f\n\n",
		sw.N1, sw.N2, res.Method, res.LogG, res.Utilization())
	headers := []string{"class", "a", "rho(route)", "Z", "blocking", "non-blocking", "E[k]", "throughput"}
	var rows [][]string
	for i, c := range sw.Classes {
		rows = append(rows, []string{
			c.Name,
			strconv.Itoa(c.A),
			report.FormatFloat(c.Rho()),
			fmt.Sprintf("%.4f", c.BPP().Peakedness()),
			report.FormatFloat(res.Blocking[i]),
			report.FormatFloat(res.NonBlocking[i]),
			report.FormatFloat(res.Concurrency[i]),
			report.FormatFloat(res.Throughput(i)),
		})
	}
	if err := report.Table(stdout, headers, rows); err != nil {
		return fail(err)
	}

	if *occupancy && res.Occupancy != nil {
		fmt.Fprintln(stdout)
		var occRows [][]string
		for s, p := range res.Occupancy {
			if p < 1e-12 && s > 0 {
				continue
			}
			occRows = append(occRows, []string{strconv.Itoa(s), report.FormatFloat(p)})
		}
		if err := report.Table(stdout, []string{"busy", "P"}, occRows); err != nil {
			return fail(err)
		}
	}

	if *weights != "" {
		ws, err := cli.ParseWeights(*weights)
		if err != nil {
			return fail(err)
		}
		an, err := revenue.New(sw, ws)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "\nrevenue W(N) = %s\n", report.FormatFloat(an.W()))
		headers := []string{"class", "w", "shadow cost", "profitable", "dW/drho (closed)", "dW/d(beta/mu)"}
		var rrows [][]string
		for i, c := range sw.Classes {
			grad := "-"
			if !c.IsPoisson() && sw.MinN() >= 2 {
				grad = report.FormatFloat(an.GradientBetaMu(i, 1e-4))
			}
			rrows = append(rrows, []string{
				c.Name,
				report.FormatFloat(ws[i]),
				report.FormatFloat(an.ShadowCost(i)),
				fmt.Sprintf("%v", an.Profitable(i)),
				report.FormatFloat(an.GradientRhoClosed(i)),
				grad,
			})
		}
		if err := report.Table(stdout, headers, rrows); err != nil {
			return fail(err)
		}
	}

	if err := stopProf(); err != nil {
		return fail(err)
	}
	return 0
}
