// Command xbar is the analytical calculator for the asynchronous
// multi-rate crossbar model: it evaluates blocking, concurrency,
// throughput, utilization and (optionally) revenue measures for a
// switch and traffic mix given on the command line.
//
// Usage:
//
//	xbar -n1 128 -n2 128 \
//	     -class voice:1:0.0024:0:1 \
//	     -class video:2:0.001:0.0005:0.5 \
//	     [-alg alg1|alg2|direct|conv] [-weights 1,0.0001] [-occupancy] \
//	     [-dispatch exact|auto|asymptotic] [-tolerance e] \
//	     [-workers n] [-tile t] [-cpuprofile f] [-memprofile f] [-trace f]
//
// -workers and -tile select the wavefront-parallel lattice fill for
// the alg1/alg2 evaluators (0 = automatic: sequential on small
// switches, parallel above the cutoff). The profiling flags write
// standard Go pprof/trace artifacts.
//
// -dispatch enables the large-N tier: auto answers from the
// saddle-point expansion when the switch is past the dispatch cutoff
// and the expansion's error bound is within -tolerance, falling back
// to the exact recursion otherwise; asymptotic forces the expansion.
// Asymptotic answers report the per-class relative error bound in the
// err<= column. Dispatch composes with the alg1 evaluator only.
//
// Each -class flag is name:a:alphaTilde:betaTilde:mu in the paper's
// aggregate ("tilde") units: intensity per particular input set over
// all C(N2,a) output sets.
//
// Alternatively, -scenario spec.json evaluates one declarative
// scenario spec (see docs/SCENARIOS.md) through the unified scenario
// engine — any of the ten disciplines, analytic and simulation
// measures alike — and prints its measure table. "-" reads the spec
// from stdin. The model flags above do not apply in this mode.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"xbar/internal/cli"
	"xbar/internal/core"
	"xbar/internal/report"
	"xbar/internal/revenue"
	"xbar/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xbar", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n1 := fs.Int("n1", 16, "number of switch inputs")
	n2 := fs.Int("n2", 16, "number of switch outputs")
	alg := fs.String("alg", "alg1", "evaluator: alg1 (scaled recursion), alg2 (mean value), direct (state sum), conv (convolution)")
	weights := fs.String("weights", "", "comma-separated revenue weights, one per class; enables the revenue report")
	occupancy := fs.Bool("occupancy", false, "print the occupancy distribution (conv evaluator)")
	workers := fs.Int("workers", 0, "lattice-fill workers: 0 auto, 1 sequential, n parallel (alg1/alg2)")
	tile := fs.Int("tile", 0, "wavefront tile edge in cells (0 = automatic)")
	dispatch := fs.String("dispatch", "", "large-N tier policy: exact, auto or asymptotic (empty = plain -alg evaluator)")
	scenarioPath := fs.String("scenario", "", `declarative scenario spec to evaluate (JSON file, "-" = stdin); replaces the model flags`)
	tolerance := fs.Float64("tolerance", 0, "largest per-class relative error bound auto dispatch accepts (0 = default)")
	prof := cli.NewProfiler(fs)
	var classes cli.ClassFlag
	fs.Var(&classes, "class", "traffic class name:a:alphaTilde:betaTilde:mu (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "xbar: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "xbar:", err)
		return 1
	}

	stopProf, err := prof.Start()
	if err != nil {
		return fail(err)
	}

	if *scenarioPath != "" {
		if err := runScenario(*scenarioPath, stdout); err != nil {
			return fail(err)
		}
		if err := stopProf(); err != nil {
			return fail(err)
		}
		return 0
	}

	if len(classes) == 0 {
		classes = cli.ClassFlag{{Name: "default", A: 1, AlphaTilde: 0.0024, Mu: 1}}
	}
	sw := core.NewSwitch(*n1, *n2, classes...)
	fill := core.Parallel(*workers, *tile)

	var res *core.Result
	switch {
	case *dispatch != "":
		if *alg != "alg1" {
			return fail(fmt.Errorf("-dispatch composes with the alg1 evaluator only, not %q", *alg))
		}
		var pol core.Dispatch
		if pol, err = core.ParseDispatch(*dispatch); err == nil {
			res, err = core.SolveAuto(sw, core.DispatchOptions{Policy: pol, Tolerance: *tolerance, Fill: fill})
		}
	case *tolerance != 0: //lint:allow floatcmp flag default sentinel
		return fail(fmt.Errorf("-tolerance requires -dispatch"))
	case *alg == "alg1":
		res, err = core.Solve(sw, fill)
	case *alg == "alg2":
		res, err = core.SolveMVA(sw, fill)
	case *alg == "direct":
		res, err = core.SolveDirect(sw)
	case *alg == "conv":
		res, err = core.SolveConvolution(sw)
	default:
		err = fmt.Errorf("unknown evaluator %q", *alg)
	}
	if err != nil {
		return fail(err)
	}
	asym := res.Tier == core.TierAsymptotic

	tier := ""
	if res.Tier != "" {
		tier = ", tier " + res.Tier
	}
	fmt.Fprintf(stdout, "%dx%d asynchronous crossbar (%s%s), ln G = %.6f, utilization %.4f\n\n",
		sw.N1, sw.N2, res.Method, tier, res.LogG, res.Utilization())
	headers := []string{"class", "a", "rho(route)", "Z", "blocking", "non-blocking", "E[k]", "throughput"}
	if asym {
		headers = append(headers, "err<=")
	}
	var rows [][]string
	for i, c := range sw.Classes {
		row := []string{
			c.Name,
			strconv.Itoa(c.A),
			report.FormatFloat(c.Rho()),
			fmt.Sprintf("%.4f", c.BPP().Peakedness()),
			report.FormatFloat(res.Blocking[i]),
			report.FormatFloat(res.NonBlocking[i]),
			report.FormatFloat(res.Concurrency[i]),
			report.FormatFloat(res.Throughput(i)),
		}
		if asym {
			row = append(row, report.FormatFloat(res.ErrorBound[i]))
		}
		rows = append(rows, row)
	}
	if err := report.Table(stdout, headers, rows); err != nil {
		return fail(err)
	}

	if *occupancy && res.Occupancy != nil {
		fmt.Fprintln(stdout)
		var occRows [][]string
		for s, p := range res.Occupancy {
			if p < 1e-12 && s > 0 {
				continue
			}
			occRows = append(occRows, []string{strconv.Itoa(s), report.FormatFloat(p)})
		}
		if err := report.Table(stdout, []string{"busy", "P"}, occRows); err != nil {
			return fail(err)
		}
	}

	if *weights != "" {
		ws, err := cli.ParseWeights(*weights)
		if err != nil {
			return fail(err)
		}
		if err := revenueReport(stdout, sw, ws, asym); err != nil {
			return fail(err)
		}
	}

	if err := stopProf(); err != nil {
		return fail(err)
	}
	return 0
}

// runScenario evaluates one declarative scenario spec and prints its
// measure table: simulation estimates carry their 95% confidence
// half-width, analytic measures show "-".
func runScenario(path string, stdout io.Writer) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	spec, err := scenario.Decode(r)
	if err != nil {
		return fmt.Errorf("scenario spec %s: %w", path, err)
	}
	res, err := scenario.Evaluate(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "scenario %s\n\n", res.Discipline)
	var rows [][]string
	for _, m := range res.Measures {
		hw := "-"
		if m.HalfWidth > 0 {
			hw = report.FormatFloat(m.HalfWidth)
		}
		rows = append(rows, []string{m.Name, report.FormatFloat(m.Value), hw})
	}
	return report.Table(stdout, []string{"measure", "value", "+-95%"}, rows)
}

// revenueReport prints the Section 4 revenue table, reading off the
// lattice-backed analysis on the exact tier and the O(R) saddle-point
// analysis when the blocking answer itself came from the asymptotic
// tier — the lattice a 4096-port shadow cost would need is exactly
// what dispatch avoided filling.
func revenueReport(stdout io.Writer, sw core.Switch, ws []float64, asym bool) error {
	headers := []string{"class", "w", "shadow cost", "profitable", "dW/drho (closed)", "dW/d(beta/mu)"}
	var rows [][]string
	var w float64
	if asym {
		an, err := revenue.NewAsymptotic(sw, ws)
		if err != nil {
			return err
		}
		w = an.W()
		for i, c := range sw.Classes {
			shadow, err := an.ShadowCost(i)
			if err != nil {
				return err
			}
			gradRho, err := an.GradientRhoClosed(i)
			if err != nil {
				return err
			}
			grad := "-"
			if !c.IsPoisson() && sw.MinN() >= 2 {
				g, err := an.GradientBetaMu(i, 1e-4)
				if err != nil {
					return err
				}
				grad = report.FormatFloat(g)
			}
			rows = append(rows, []string{
				c.Name,
				report.FormatFloat(ws[i]),
				report.FormatFloat(shadow),
				fmt.Sprintf("%v", ws[i] > shadow),
				report.FormatFloat(gradRho),
				grad,
			})
		}
	} else {
		an, err := revenue.New(sw, ws)
		if err != nil {
			return err
		}
		w = an.W()
		for i, c := range sw.Classes {
			grad := "-"
			if !c.IsPoisson() && sw.MinN() >= 2 {
				grad = report.FormatFloat(an.GradientBetaMu(i, 1e-4))
			}
			rows = append(rows, []string{
				c.Name,
				report.FormatFloat(ws[i]),
				report.FormatFloat(an.ShadowCost(i)),
				fmt.Sprintf("%v", an.Profitable(i)),
				report.FormatFloat(an.GradientRhoClosed(i)),
				grad,
			})
		}
	}
	fmt.Fprintf(stdout, "\nrevenue W(N) = %s\n", report.FormatFloat(w))
	return report.Table(stdout, headers, rows)
}
