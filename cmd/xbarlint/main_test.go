package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xbar/internal/analyzers"
)

// capture runs run() against in-memory writers and returns the exit
// code and captured stdout.
func capture(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String()
}

// fixture returns a module-relative path to a golden-test fixture dir.
func fixture(t *testing.T, name string) string {
	t.Helper()
	loader, err := analyzers.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(loader.ModRoot, "internal", "analyzers", "testdata", "src", name)
}

func TestExitCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("lints the whole module; skipped in -short")
	}
	loader, err := analyzers.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	code, _ := capture(t, loader.ModRoot+"/...")
	if code != 0 {
		t.Errorf("exit code on clean tree = %d, want 0", code)
	}
}

func TestExitSeededViolations(t *testing.T) {
	code, out := capture(t, fixture(t, "floatcmp"))
	if code != 1 {
		t.Errorf("exit code on seeded violations = %d, want 1", code)
	}
	if !strings.Contains(out, "floatcmp.go:5:") {
		t.Errorf("output missing file:line position:\n%s", out)
	}
}

func TestExitUsageErrors(t *testing.T) {
	if code, _ := capture(t, "-nosuchflag"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code, _ := capture(t, "-checks", "nosuchcheck", "."); code != 2 {
		t.Errorf("unknown check: exit %d, want 2", code)
	}
	if code, _ := capture(t, filepath.Join(t.TempDir(), "missing")); code != 2 {
		t.Errorf("missing dir: exit %d, want 2", code)
	}
}

func TestJSONOutput(t *testing.T) {
	code, out := capture(t, "-json", fixture(t, "errcheck"))
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	var diags []analyzers.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if len(diags) != 2 {
		t.Errorf("got %d diagnostics, want 2", len(diags))
	}
	for _, d := range diags {
		if d.Check != "errcheck" || d.Line == 0 || d.File == "" {
			t.Errorf("malformed diagnostic %+v", d)
		}
	}
}

func TestListChecks(t *testing.T) {
	code, out := capture(t, "-list")
	if code != 0 {
		t.Errorf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{
		"floatcmp", "detrand", "libpanic", "nanguard", "errcheck", "waitcheck",
		"lockorder", "goleak", "reusecheck", "ctxflow",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %q:\n%s", name, out)
		}
	}
}

// TestFixZeroCompare drives -fix end to end on a scratch copy of the
// fixdemo fixture and pins the rewritten file against its golden.
func TestFixZeroCompare(t *testing.T) {
	src, err := os.ReadFile(filepath.Join(fixture(t, "fixdemo"), "fixdemo.go"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	target := filepath.Join(dir, "fixdemo.go")
	if err := os.WriteFile(target, src, 0o644); err != nil {
		t.Fatal(err)
	}

	code, _ := capture(t, "-fix", "-checks", "floatcmp", dir)
	if code != 0 {
		t.Errorf("-fix exit = %d, want 0 (every diagnostic is fixable)", code)
	}

	got, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(fixture(t, "fixdemo"), "fixdemo.go.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("fixed file does not match golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The rewritten package must be lint-clean on re-run.
	if code, out := capture(t, "-checks", "floatcmp", dir); code != 0 {
		t.Errorf("re-lint after -fix: exit %d, want 0\n%s", code, out)
	}
}

// TestJSONSnapshot pins the full -json wire format — including the
// fix objects — against a stored snapshot, with the module root
// normalized out of paths.
func TestJSONSnapshot(t *testing.T) {
	loader, err := analyzers.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	code, out := capture(t, "-json", "-checks", "floatcmp", fixture(t, "fixdemo"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	norm := strings.ReplaceAll(out, loader.ModRoot, "$MODROOT")
	want, err := os.ReadFile(filepath.Join("testdata", "snapshot.json"))
	if err != nil {
		t.Fatal(err)
	}
	if norm != string(want) {
		t.Errorf("-json output drifted from testdata/snapshot.json.\n--- got ---\n%s\n--- want ---\n%s", norm, want)
	}
}

func TestCheckSelection(t *testing.T) {
	// The floatcmp fixture is clean for every other analyzer, so
	// disabling floatcmp must make it pass.
	if code, _ := capture(t, "-disable", "floatcmp", fixture(t, "floatcmp")); code != 0 {
		t.Errorf("-disable floatcmp on floatcmp fixture: exit %d, want 0", code)
	}
	if code, _ := capture(t, "-checks", "floatcmp", fixture(t, "floatcmp")); code != 1 {
		t.Errorf("-checks floatcmp on floatcmp fixture: exit %d, want 1", code)
	}
}
