package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xbar/internal/analyzers"
)

// capture runs run() with stdout and stderr redirected to temp files
// and returns the exit code and captured stdout.
func capture(t *testing.T, args ...string) (int, string) {
	t.Helper()
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	errf, err := os.CreateTemp(t.TempDir(), "err")
	if err != nil {
		t.Fatal(err)
	}
	code := run(args, out, errf)
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(data)
}

// fixture returns a module-relative path to a golden-test fixture dir.
func fixture(t *testing.T, name string) string {
	t.Helper()
	loader, err := analyzers.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(loader.ModRoot, "internal", "analyzers", "testdata", "src", name)
}

func TestExitCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("lints the whole module; skipped in -short")
	}
	loader, err := analyzers.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	code, _ := capture(t, loader.ModRoot+"/...")
	if code != 0 {
		t.Errorf("exit code on clean tree = %d, want 0", code)
	}
}

func TestExitSeededViolations(t *testing.T) {
	code, out := capture(t, fixture(t, "floatcmp"))
	if code != 1 {
		t.Errorf("exit code on seeded violations = %d, want 1", code)
	}
	if !strings.Contains(out, "floatcmp.go:5:") {
		t.Errorf("output missing file:line position:\n%s", out)
	}
}

func TestExitUsageErrors(t *testing.T) {
	if code, _ := capture(t, "-nosuchflag"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code, _ := capture(t, "-checks", "nosuchcheck", "."); code != 2 {
		t.Errorf("unknown check: exit %d, want 2", code)
	}
	if code, _ := capture(t, filepath.Join(t.TempDir(), "missing")); code != 2 {
		t.Errorf("missing dir: exit %d, want 2", code)
	}
}

func TestJSONOutput(t *testing.T) {
	code, out := capture(t, "-json", fixture(t, "errcheck"))
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	var diags []analyzers.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if len(diags) != 2 {
		t.Errorf("got %d diagnostics, want 2", len(diags))
	}
	for _, d := range diags {
		if d.Check != "errcheck" || d.Line == 0 || d.File == "" {
			t.Errorf("malformed diagnostic %+v", d)
		}
	}
}

func TestListChecks(t *testing.T) {
	code, out := capture(t, "-list")
	if code != 0 {
		t.Errorf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{"floatcmp", "detrand", "libpanic", "nanguard", "errcheck", "waitcheck"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %q:\n%s", name, out)
		}
	}
}

func TestCheckSelection(t *testing.T) {
	// The floatcmp fixture is clean for every other analyzer, so
	// disabling floatcmp must make it pass.
	if code, _ := capture(t, "-disable", "floatcmp", fixture(t, "floatcmp")); code != 0 {
		t.Errorf("-disable floatcmp on floatcmp fixture: exit %d, want 0", code)
	}
	if code, _ := capture(t, "-checks", "floatcmp", fixture(t, "floatcmp")); code != 1 {
		t.Errorf("-checks floatcmp on floatcmp fixture: exit %d, want 1", code)
	}
}
