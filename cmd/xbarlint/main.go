// Command xbarlint runs the repo's project-specific static checks
// (see internal/analyzers and docs/STATIC_ANALYSIS.md) over module
// packages. It is standard-library only, like the rest of the module.
//
// Usage:
//
//	xbarlint [flags] [packages]
//
// Packages follow go-tool patterns: ./..., dir/..., or plain package
// directories; the default is ./... from the current directory.
//
// Exit codes: 0 when no diagnostics are reported, 1 when at least one
// diagnostic is reported, 2 on usage or load errors — so CI can gate
// with `go run ./cmd/xbarlint ./...`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"xbar/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xbarlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut  = fs.Bool("json", false, "emit diagnostics as a JSON array instead of text")
		checks   = fs.String("checks", "", "comma-separated check IDs to run (default: all)")
		disable  = fs.String("disable", "", "comma-separated check IDs to skip")
		list     = fs.Bool("list", false, "list available checks and exit")
		fix      = fs.Bool("fix", false, "apply machine-suggested fixes in place (currently: floatcmp zero comparisons)")
		typeErrs = fs.Bool("typeerrors", false, "also print soft type-checking errors to stderr")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: xbarlint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analyzers.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected, err := selectAnalyzers(*checks, *disable)
	if err != nil {
		fmt.Fprintln(stderr, "xbarlint:", err)
		return 2
	}

	loader, err := analyzers.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "xbarlint:", err)
		return 2
	}
	dirs, err := loader.Expand(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "xbarlint:", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintln(stderr, "xbarlint: no packages match the given patterns")
		return 2
	}

	cwd, _ := os.Getwd()
	var all []analyzers.Diagnostic
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(stderr, "xbarlint: %s: %v\n", dir, err)
			return 2
		}
		if *typeErrs {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(stderr, "xbarlint: typecheck: %v\n", terr)
			}
		}
		for _, d := range analyzers.Run(pkg, selected) {
			d.File = relPath(cwd, d.File)
			all = append(all, d)
		}
	}

	if *fix {
		applied, err := analyzers.ApplyFixes(all)
		if err != nil {
			fmt.Fprintln(stderr, "xbarlint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "xbarlint: applied %d fix(es)\n", applied)
		// Fixed diagnostics are resolved; report only what remains.
		var remaining []analyzers.Diagnostic
		for _, d := range all {
			if d.Fix == nil {
				remaining = append(remaining, d)
			}
		}
		all = remaining
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []analyzers.Diagnostic{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(stderr, "xbarlint:", err)
			return 2
		}
	} else {
		for _, d := range all {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(all) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "xbarlint: %d diagnostic(s)\n", len(all))
		}
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -checks / -disable flags.
func selectAnalyzers(checks, disable string) ([]*analyzers.Analyzer, error) {
	selected := analyzers.All()
	if checks != "" {
		selected = nil
		for _, name := range strings.Split(checks, ",") {
			name = strings.TrimSpace(name)
			a := analyzers.ByName(name)
			if a == nil {
				return nil, fmt.Errorf("unknown check %q (see -list)", name)
			}
			selected = append(selected, a)
		}
	}
	if disable != "" {
		skip := make(map[string]bool)
		for _, name := range strings.Split(disable, ",") {
			name = strings.TrimSpace(name)
			if analyzers.ByName(name) == nil {
				return nil, fmt.Errorf("unknown check %q (see -list)", name)
			}
			skip[name] = true
		}
		var kept []*analyzers.Analyzer
		for _, a := range selected {
			if !skip[a.Name] {
				kept = append(kept, a)
			}
		}
		selected = kept
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no checks selected")
	}
	return selected, nil
}

func relPath(cwd, path string) string {
	if cwd == "" {
		return path
	}
	if rel, err := filepath.Rel(cwd, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
