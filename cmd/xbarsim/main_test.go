package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

// short simulation flags: enough events for non-empty counters, fast
// enough for the unit-test tier.
var short = []string{"-n1", "4", "-n2", "4", "-horizon", "2000", "-warmup", "200"}

func TestDefaultRun(t *testing.T) {
	code, out, errOut := runCapture(t, short...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"4x4 crossbar, exponential service", "mean occupancy", "B (analytic)", "default"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestServiceAndClasses(t *testing.T) {
	args := append(append([]string(nil), short...),
		"-service", "det", "-seed", "7",
		"-class", "v:1:0.01:0:1", "-class", "w:2:0.004:0.001:0.5")
	code, out, errOut := runCapture(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"deterministic service", "seed 7", "v", "w"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBadInputs(t *testing.T) {
	cases := [][]string{
		{"-service", "bogus"},
		{"-class", "nonsense"},
		{"positional"},
		{"-n1", "0"},
	}
	for _, args := range cases {
		code, _, errOut := runCapture(t, args...)
		if code == 0 {
			t.Errorf("args %v: exit 0, want failure", args)
		}
		if errOut == "" {
			t.Errorf("args %v: empty stderr", args)
		}
	}
}
