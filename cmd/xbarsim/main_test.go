package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

// short simulation flags: enough events for non-empty counters, fast
// enough for the unit-test tier.
var short = []string{"-n1", "4", "-n2", "4", "-horizon", "2000", "-warmup", "200"}

func TestDefaultRun(t *testing.T) {
	code, out, errOut := runCapture(t, short...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"4x4 crossbar, exponential service", "mean occupancy", "B (analytic)", "default"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestServiceAndClasses(t *testing.T) {
	args := append(append([]string(nil), short...),
		"-service", "det", "-seed", "7",
		"-class", "v:1:0.01:0:1", "-class", "w:2:0.004:0.001:0.5")
	code, out, errOut := runCapture(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"deterministic service", "seed 7", "v", "w"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFarmRun(t *testing.T) {
	args := append(append([]string(nil), short...), "-reps", "4", "-workers", "2")
	code, out, errOut := runCapture(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"4 replications", "throughput", "events/s", "mean occupancy", "B (analytic)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFarmDeterministicOutputAcrossWorkers(t *testing.T) {
	base := append(append([]string(nil), short...), "-reps", "3", "-seed", "5")
	_, out1, _ := runCapture(t, append(base, "-workers", "1")...)
	_, out8, _ := runCapture(t, append(base, "-workers", "8")...)
	if stripThroughput(out1) != stripThroughput(out8) {
		t.Errorf("farm output depends on worker count:\n-- workers=1 --\n%s\n-- workers=8 --\n%s", out1, out8)
	}
}

// stripThroughput drops the wall-clock-dependent line so the rest of
// the report can be compared exactly.
func stripThroughput(out string) string {
	var kept []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "throughput ") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

func TestValidateGate(t *testing.T) {
	args := append(append([]string(nil), short...), "-reps", "6", "-validate")
	code, out, errOut := runCapture(t, args...)
	if code != 0 {
		t.Fatalf("validation run failed: exit %d, stderr: %s\nstdout: %s", code, errOut, out)
	}
	for _, want := range []string{"farm vs analytic", "max |z|", "concurrency"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// An impossible gate must fail with a diagnostic on stderr.
	args = append(args, "-max-z", "0")
	code, _, errOut = runCapture(t, args...)
	if code == 0 {
		t.Error("-max-z 0 still passed")
	}
	if !strings.Contains(errOut, "validation failed") {
		t.Errorf("stderr missing failure diagnostic: %s", errOut)
	}
}

func TestBadInputs(t *testing.T) {
	cases := [][]string{
		{"-service", "bogus"},
		{"-class", "nonsense"},
		{"positional"},
		{"-n1", "0"},
		{"-reps", "0"},
	}
	for _, args := range cases {
		code, _, errOut := runCapture(t, args...)
		if code == 0 {
			t.Errorf("args %v: exit 0, want failure", args)
		}
		if errOut == "" {
			t.Errorf("args %v: empty stderr", args)
		}
	}
}
