// Command xbarsim runs the discrete-event crossbar simulator and
// prints its estimates next to the analytical model's predictions.
//
// Usage:
//
//	xbarsim -n1 32 -n2 32 \
//	        -class voice:1:0.0024:0:1 \
//	        [-service exp|det|erlang4|hyper4|pareto2.5] \
//	        [-horizon 200000] [-warmup 20000] [-seed 1]
//
// The -service flag exercises the insensitivity property: any holding
// time distribution with the same mean must reproduce the analytical
// measures.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"xbar/internal/cli"
	"xbar/internal/core"
	"xbar/internal/report"
	"xbar/internal/rng"
	"xbar/internal/sim"
)

func main() {
	n1 := flag.Int("n1", 16, "number of switch inputs")
	n2 := flag.Int("n2", 16, "number of switch outputs")
	horizon := flag.Float64("horizon", 200000, "measured simulated time")
	warmup := flag.Float64("warmup", 20000, "discarded warmup time")
	seed := flag.Uint64("seed", 1, "random seed")
	service := flag.String("service", "exp", "holding time distribution: exp det erlang4 hyper4 pareto2.5")
	var classes cli.ClassFlag
	flag.Var(&classes, "class", "traffic class name:a:alphaTilde:betaTilde:mu (repeatable)")
	flag.Parse()

	if len(classes) == 0 {
		classes = cli.ClassFlag{{Name: "default", A: 1, AlphaTilde: 0.0024, Mu: 1}}
	}
	sw := core.NewSwitch(*n1, *n2, classes...)

	dists := make([]rng.ServiceDist, len(sw.Classes))
	for i, c := range sw.Classes {
		d, err := cli.ParseService(*service, 1/c.Mu)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xbarsim:", err)
			os.Exit(1)
		}
		dists[i] = d
	}

	analytic, err := core.Solve(sw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xbarsim:", err)
		os.Exit(1)
	}
	res, err := sim.Run(sim.Config{
		Switch:  sw,
		Seed:    *seed,
		Warmup:  *warmup,
		Horizon: *horizon,
		Service: dists,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "xbarsim:", err)
		os.Exit(1)
	}

	fmt.Printf("%dx%d crossbar, %s service, %d events, horizon %g (+%g warmup), seed %d\n",
		sw.N1, sw.N2, dists[0].Name(), res.Events, *horizon, *warmup, *seed)
	fmt.Printf("mean occupancy %.4f (utilization %.4f)\n\n", res.MeanOccupancy, res.Utilization)
	headers := []string{"class", "offered", "blocked",
		"B time (sim)", "B (analytic)", "B call (sim)", "E (sim)", "E (analytic)"}
	var rows [][]string
	for i, c := range sw.Classes {
		cr := res.Classes[i]
		rows = append(rows, []string{
			c.Name,
			strconv.FormatInt(cr.Offered, 10),
			strconv.FormatInt(cr.Blocked, 10),
			fmt.Sprintf("%.6f ± %.6f", 1-cr.TimeNonBlocking.Mean, cr.TimeNonBlocking.HalfWidth),
			report.FormatFloat(analytic.Blocking[i]),
			fmt.Sprintf("%.6f ± %.6f", cr.CallBlocking.Mean, cr.CallBlocking.HalfWidth),
			fmt.Sprintf("%.5f ± %.5f", cr.Concurrency.Mean, cr.Concurrency.HalfWidth),
			report.FormatFloat(analytic.Concurrency[i]),
		})
	}
	if err := report.Table(os.Stdout, headers, rows); err != nil {
		fmt.Fprintln(os.Stderr, "xbarsim:", err)
		os.Exit(1)
	}
}
