// Command xbarsim runs the discrete-event crossbar simulator and
// prints its estimates next to the analytical model's predictions.
//
// Usage:
//
//	xbarsim -n1 32 -n2 32 \
//	        -class voice:1:0.0024:0:1 \
//	        [-service exp|det|erlang4|hyper4|pareto2.5] \
//	        [-horizon 200000] [-warmup 20000] [-seed 1] \
//	        [-reps 8] [-workers 0] [-validate] [-max-z 3]
//
// The -service flag exercises the insensitivity property: any holding
// time distribution with the same mean must reproduce the analytical
// measures.
//
// With -reps R > 1 the run becomes a replication farm: R independent
// replications on -workers goroutines (0 selects GOMAXPROCS), pooled
// into one set of confidence intervals. The output is a pure function
// of (seed, reps) — the worker count changes wall-clock time only.
//
// -validate scores every pooled estimate against the product-form
// solver as a z-statistic and exits nonzero when max |z| exceeds
// -max-z, which is how CI gates the engine against the paper's model.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"xbar/internal/cli"
	"xbar/internal/core"
	"xbar/internal/report"
	"xbar/internal/rng"
	"xbar/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xbarsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n1 := fs.Int("n1", 16, "number of switch inputs")
	n2 := fs.Int("n2", 16, "number of switch outputs")
	horizon := fs.Float64("horizon", 200000, "measured simulated time")
	warmup := fs.Float64("warmup", 20000, "discarded warmup time")
	seed := fs.Uint64("seed", 1, "random seed")
	service := fs.String("service", "exp", "holding time distribution: exp det erlang4 hyper4 pareto2.5")
	reps := fs.Int("reps", 1, "independent replications to pool")
	workers := fs.Int("workers", 0, "worker goroutines for the replication farm; 0 = GOMAXPROCS")
	validate := fs.Bool("validate", false, "score the farm against the analytic solution and gate on -max-z")
	maxZ := fs.Float64("max-z", 3, "largest allowed |z| between simulated and analytic measures with -validate")
	var classes cli.ClassFlag
	fs.Var(&classes, "class", "traffic class name:a:alphaTilde:betaTilde:mu (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "xbarsim: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "xbarsim:", err)
		return 1
	}
	if *reps < 1 {
		return fail(fmt.Errorf("-reps must be at least 1, got %d", *reps))
	}

	if len(classes) == 0 {
		classes = cli.ClassFlag{{Name: "default", A: 1, AlphaTilde: 0.0024, Mu: 1}}
	}
	sw := core.NewSwitch(*n1, *n2, classes...)

	dists := make([]rng.ServiceDist, len(sw.Classes))
	for i, c := range sw.Classes {
		d, err := cli.ParseService(*service, 1/c.Mu)
		if err != nil {
			return fail(err)
		}
		dists[i] = d
	}

	analytic, err := core.Solve(sw)
	if err != nil {
		return fail(err)
	}
	cfg := sim.Config{
		Switch:  sw,
		Seed:    *seed,
		Warmup:  *warmup,
		Horizon: *horizon,
		Service: dists,
	}
	fc := sim.FarmConfig{Config: cfg, Reps: *reps, Workers: *workers}

	if *validate {
		return runValidate(fc, *maxZ, stdout, stderr)
	}
	if *reps > 1 {
		return runFarm(fc, analytic, dists[0].Name(), stdout, stderr)
	}

	started := time.Now()
	res, err := sim.Run(cfg)
	if err != nil {
		return fail(err)
	}
	elapsed := time.Since(started)

	fmt.Fprintf(stdout, "%dx%d crossbar, %s service, %d events, horizon %g (+%g warmup), seed %d\n",
		sw.N1, sw.N2, dists[0].Name(), res.Events, *horizon, *warmup, *seed)
	fmt.Fprintf(stdout, "throughput %s events/s (%.0f ms wall)\n",
		formatRate(float64(res.Events)/elapsed.Seconds()), elapsed.Seconds()*1000)
	fmt.Fprintf(stdout, "mean occupancy %.4f (utilization %.4f)\n\n", res.MeanOccupancy, res.Utilization)
	headers := []string{"class", "offered", "blocked",
		"B time (sim)", "B (analytic)", "B call (sim)", "E (sim)", "E (analytic)"}
	var rows [][]string
	for i, c := range sw.Classes {
		cr := res.Classes[i]
		rows = append(rows, classRow(c.Name, cr, analytic, i))
	}
	if err := report.Table(stdout, headers, rows); err != nil {
		return fail(err)
	}
	return 0
}

// runFarm runs the replication farm and prints pooled estimates in
// the same table layout as a single run.
func runFarm(fc sim.FarmConfig, analytic *core.Result, serviceName string, stdout, stderr io.Writer) int {
	started := time.Now()
	res, err := sim.Farm(fc)
	if err != nil {
		fmt.Fprintln(stderr, "xbarsim:", err)
		return 1
	}
	elapsed := time.Since(started)
	sw := fc.Switch

	fmt.Fprintf(stdout, "%dx%d crossbar, %s service, %d replications, %d events, horizon %g (+%g warmup), seed %d\n",
		sw.N1, sw.N2, serviceName, res.Reps, res.Events, fc.Horizon, fc.Warmup, fc.Seed)
	fmt.Fprintf(stdout, "throughput %s events/s (%.0f ms wall)\n",
		formatRate(float64(res.Events)/elapsed.Seconds()), elapsed.Seconds()*1000)
	fmt.Fprintf(stdout, "mean occupancy %.4f ± %.4f (utilization %.4f)\n\n",
		res.MeanOccupancy.Mean, res.MeanOccupancy.HalfWidth, res.Utilization)
	headers := []string{"class", "offered", "blocked",
		"B time (sim)", "B (analytic)", "B call (sim)", "E (sim)", "E (analytic)"}
	var rows [][]string
	for i, c := range sw.Classes {
		rows = append(rows, classRow(c.Name, res.Classes[i], analytic, i))
	}
	if err := report.Table(stdout, headers, rows); err != nil {
		fmt.Fprintln(stderr, "xbarsim:", err)
		return 1
	}
	return 0
}

// runValidate scores the farm against the analytic solution and gates
// on the largest |z|.
func runValidate(fc sim.FarmConfig, maxZ float64, stdout, stderr io.Writer) int {
	started := time.Now()
	v, err := sim.Validate(fc)
	if err != nil {
		fmt.Fprintln(stderr, "xbarsim:", err)
		return 1
	}
	elapsed := time.Since(started)
	sw := fc.Switch

	fmt.Fprintf(stdout, "%dx%d crossbar, %d replications, %d events, seed %d: farm vs analytic\n",
		sw.N1, sw.N2, v.Farm.Reps, v.Farm.Events, fc.Seed)
	fmt.Fprintf(stdout, "throughput %s events/s (%.0f ms wall)\n\n",
		formatRate(float64(v.Farm.Events)/elapsed.Seconds()), elapsed.Seconds()*1000)
	headers := []string{"class", "measure", "sim", "analytic", "z"}
	var rows [][]string
	for _, m := range v.Measures {
		name := "switch"
		if m.Class >= 0 {
			name = sw.Classes[m.Class].Name
		}
		rows = append(rows, []string{
			name, m.Name,
			report.FormatFloat(m.Sim),
			report.FormatFloat(m.Analytic),
			fmt.Sprintf("%+.2f", m.Z),
		})
	}
	if err := report.Table(stdout, headers, rows); err != nil {
		fmt.Fprintln(stderr, "xbarsim:", err)
		return 1
	}
	fmt.Fprintf(stdout, "\nmax |z| = %.2f (gate %.2f)\n", v.MaxAbsZ, maxZ)
	if v.MaxAbsZ > maxZ {
		fmt.Fprintf(stderr, "xbarsim: validation failed: max |z| %.2f exceeds %.2f\n", v.MaxAbsZ, maxZ)
		return 1
	}
	return 0
}

// classRow formats one class's estimates next to the analytic values.
func classRow(name string, cr sim.ClassResult, analytic *core.Result, i int) []string {
	return []string{
		name,
		strconv.FormatInt(cr.Offered, 10),
		strconv.FormatInt(cr.Blocked, 10),
		fmt.Sprintf("%.6f ± %.6f", 1-cr.TimeNonBlocking.Mean, cr.TimeNonBlocking.HalfWidth),
		report.FormatFloat(analytic.Blocking[i]),
		fmt.Sprintf("%.6f ± %.6f", cr.CallBlocking.Mean, cr.CallBlocking.HalfWidth),
		fmt.Sprintf("%.5f ± %.5f", cr.Concurrency.Mean, cr.Concurrency.HalfWidth),
		report.FormatFloat(analytic.Concurrency[i]),
	}
}

// formatRate renders an events-per-second figure compactly (12.3M,
// 450k, 980).
func formatRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.0fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
