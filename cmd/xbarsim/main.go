// Command xbarsim runs the discrete-event crossbar simulator and
// prints its estimates next to the analytical model's predictions.
//
// Usage:
//
//	xbarsim -n1 32 -n2 32 \
//	        -class voice:1:0.0024:0:1 \
//	        [-service exp|det|erlang4|hyper4|pareto2.5] \
//	        [-horizon 200000] [-warmup 20000] [-seed 1]
//
// The -service flag exercises the insensitivity property: any holding
// time distribution with the same mean must reproduce the analytical
// measures.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"xbar/internal/cli"
	"xbar/internal/core"
	"xbar/internal/report"
	"xbar/internal/rng"
	"xbar/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xbarsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n1 := fs.Int("n1", 16, "number of switch inputs")
	n2 := fs.Int("n2", 16, "number of switch outputs")
	horizon := fs.Float64("horizon", 200000, "measured simulated time")
	warmup := fs.Float64("warmup", 20000, "discarded warmup time")
	seed := fs.Uint64("seed", 1, "random seed")
	service := fs.String("service", "exp", "holding time distribution: exp det erlang4 hyper4 pareto2.5")
	var classes cli.ClassFlag
	fs.Var(&classes, "class", "traffic class name:a:alphaTilde:betaTilde:mu (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "xbarsim: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "xbarsim:", err)
		return 1
	}

	if len(classes) == 0 {
		classes = cli.ClassFlag{{Name: "default", A: 1, AlphaTilde: 0.0024, Mu: 1}}
	}
	sw := core.NewSwitch(*n1, *n2, classes...)

	dists := make([]rng.ServiceDist, len(sw.Classes))
	for i, c := range sw.Classes {
		d, err := cli.ParseService(*service, 1/c.Mu)
		if err != nil {
			return fail(err)
		}
		dists[i] = d
	}

	analytic, err := core.Solve(sw)
	if err != nil {
		return fail(err)
	}
	res, err := sim.Run(sim.Config{
		Switch:  sw,
		Seed:    *seed,
		Warmup:  *warmup,
		Horizon: *horizon,
		Service: dists,
	})
	if err != nil {
		return fail(err)
	}

	fmt.Fprintf(stdout, "%dx%d crossbar, %s service, %d events, horizon %g (+%g warmup), seed %d\n",
		sw.N1, sw.N2, dists[0].Name(), res.Events, *horizon, *warmup, *seed)
	fmt.Fprintf(stdout, "mean occupancy %.4f (utilization %.4f)\n\n", res.MeanOccupancy, res.Utilization)
	headers := []string{"class", "offered", "blocked",
		"B time (sim)", "B (analytic)", "B call (sim)", "E (sim)", "E (analytic)"}
	var rows [][]string
	for i, c := range sw.Classes {
		cr := res.Classes[i]
		rows = append(rows, []string{
			c.Name,
			strconv.FormatInt(cr.Offered, 10),
			strconv.FormatInt(cr.Blocked, 10),
			fmt.Sprintf("%.6f ± %.6f", 1-cr.TimeNonBlocking.Mean, cr.TimeNonBlocking.HalfWidth),
			report.FormatFloat(analytic.Blocking[i]),
			fmt.Sprintf("%.6f ± %.6f", cr.CallBlocking.Mean, cr.CallBlocking.HalfWidth),
			fmt.Sprintf("%.5f ± %.5f", cr.Concurrency.Mean, cr.Concurrency.HalfWidth),
			report.FormatFloat(analytic.Concurrency[i]),
		})
	}
	if err := report.Table(stdout, headers, rows); err != nil {
		return fail(err)
	}
	return 0
}
