// Command experiments regenerates every table and figure of the paper
// plus the reproduction's validation, ablation and extension studies
// (implemented in internal/experiments).
//
// Usage:
//
//	experiments -run all [-out results] [-quick] [-workers n]
//	            [-cpuprofile f] [-memprofile f] [-trace f]
//	experiments -run fig1|fig2|fig3|fig4|table1|table2|simcheck|ablation|baselines|network
//	experiments -run admission|ipp|clos|transient|hotspot|wdm|retrial|traffic|overflow|inputq|figdense  (extensions)
//
// Text renderings go to stdout; CSV files go to the -out directory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"xbar/internal/cli"
	"xbar/internal/experiments"
	"xbar/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runName := fs.String("run", "all",
		"experiment to run: "+strings.Join(experiments.Order(), " ")+" or all")
	out := fs.String("out", "results", "directory for CSV output")
	quick := fs.Bool("quick", false, "shorter simulation horizons")
	workers := fs.Int("workers", 0,
		"worker-pool size for sweeps and replications (0 = GOMAXPROCS)")
	prof := cli.NewProfiler(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "experiments: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}
	workload.Workers = *workers
	stopProf, err := prof.Start()
	if err != nil {
		return fail(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return fail(err)
	}
	steps := experiments.Steps()
	if *runName == "all" {
		for _, name := range experiments.Order() {
			fmt.Fprintf(stdout, "==== %s ====\n", name)
			if err := steps[name](*out, *quick); err != nil {
				return fail(err)
			}
			fmt.Fprintln(stdout)
		}
	} else {
		step, ok := steps[*runName]
		if !ok {
			return fail(fmt.Errorf("unknown experiment %q", *runName))
		}
		if err := step(*out, *quick); err != nil {
			return fail(err)
		}
	}
	if err := stopProf(); err != nil {
		return fail(err)
	}
	return 0
}
