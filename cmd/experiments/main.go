// Command experiments regenerates every table and figure of the paper
// plus the reproduction's validation, ablation and extension studies
// (implemented in internal/experiments).
//
// Usage:
//
//	experiments -run all [-out results] [-quick] [-workers n]
//	            [-cpuprofile f] [-memprofile f] [-trace f]
//	experiments -run fig1|fig2|fig3|fig4|table1|table2|simcheck|ablation|baselines|network
//	experiments -run admission|ipp|clos|transient|hotspot|wdm|retrial|traffic|overflow|inputq|figdense  (extensions)
//
// Text renderings go to stdout; CSV files go to the -out directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xbar/internal/cli"
	"xbar/internal/experiments"
	"xbar/internal/workload"
)

func main() {
	run := flag.String("run", "all",
		"experiment to run: "+strings.Join(experiments.Order(), " ")+" or all")
	out := flag.String("out", "results", "directory for CSV output")
	quick := flag.Bool("quick", false, "shorter simulation horizons")
	workers := flag.Int("workers", 0,
		"worker-pool size for sweeps and replications (0 = GOMAXPROCS)")
	prof := cli.NewProfiler(flag.CommandLine)
	flag.Parse()
	workload.Workers = *workers
	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	steps := experiments.Steps()
	if *run == "all" {
		for _, name := range experiments.Order() {
			fmt.Printf("==== %s ====\n", name)
			if err := steps[name](*out, *quick); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	} else {
		step, ok := steps[*run]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q", *run))
		}
		if err := step(*out, *quick); err != nil {
			fatal(err)
		}
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
