package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFig1Quick(t *testing.T) {
	dir := t.TempDir()
	var out, errBuf bytes.Buffer
	if code := run([]string{"-run", "Fig1", "-quick", "-out", dir}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "N,") {
		t.Errorf("figure1.csv header = %q", strings.SplitN(string(data), "\n", 2)[0])
	}
}

func TestErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errBuf); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code := run([]string{"stray"}, &out, &errBuf); code != 2 {
		t.Errorf("positional args: exit %d, want 2", code)
	}
	errBuf.Reset()
	if code := run([]string{"-run", "nope", "-out", t.TempDir()}, &out, &errBuf); code != 1 {
		t.Errorf("unknown experiment: exit %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "unknown experiment") {
		t.Errorf("stderr = %q", errBuf.String())
	}
}
