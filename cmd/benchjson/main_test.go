package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: xbar
BenchmarkFigure4-8         	       2	    573013 ns/op	  207616 B/op	     135 allocs/op
BenchmarkTable2/set1-8     	       1	  31699002 ns/op	 8856368 B/op	    1052 allocs/op
BenchmarkNoMem-8           	     100	      1234 ns/op
PASS
ok  	xbar	2.1s
`
	got, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	f4 := got["BenchmarkFigure4"]
	if f4.NsPerOp != 573013 || f4.BytesPerOp != 207616 || f4.AllocsPerOp != 135 {
		t.Errorf("Figure4 = %+v", f4)
	}
	sub := got["BenchmarkTable2/set1"]
	if sub.NsPerOp != 31699002 {
		t.Errorf("Table2/set1 = %+v", sub)
	}
	nomem := got["BenchmarkNoMem"]
	if nomem.NsPerOp != 1234 || nomem.BytesPerOp != 0 {
		t.Errorf("NoMem = %+v", nomem)
	}
}

func TestParseAveragesRepeats(t *testing.T) {
	input := `BenchmarkX-1   10   100 ns/op   8 B/op   1 allocs/op
BenchmarkX-1   10   300 ns/op   16 B/op   3 allocs/op
`
	got, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	x := got["BenchmarkX"]
	if x.NsPerOp != 200 || x.BytesPerOp != 12 || x.AllocsPerOp != 2 {
		t.Errorf("averaged = %+v", x)
	}
}

func TestParseIgnoresNonBench(t *testing.T) {
	got, err := parse(strings.NewReader("=== RUN TestFoo\n--- PASS: TestFoo\nBenchmark text without numbers\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("parsed %v from non-benchmark input", got)
	}
}

func TestCompare(t *testing.T) {
	old := map[string]Metrics{
		"BenchmarkA":    {NsPerOp: 1000, BytesPerOp: 800, AllocsPerOp: 10},
		"BenchmarkB":    {NsPerOp: 2000, BytesPerOp: 0, AllocsPerOp: 0},
		"BenchmarkGone": {NsPerOp: 50},
	}
	cur := map[string]Metrics{
		"BenchmarkA":   {NsPerOp: 500, BytesPerOp: 400, AllocsPerOp: 10},
		"BenchmarkB":   {NsPerOp: 2500, BytesPerOp: 0, AllocsPerOp: 0},
		"BenchmarkNew": {NsPerOp: 75},
	}
	report, worst := compare(old, cur, 0)
	if worst != 25 {
		t.Errorf("worst regression = %v, want 25 (BenchmarkB 2000 -> 2500)", worst)
	}
	for _, want := range []string{
		"BenchmarkA", "-50.0%", // halved ns/op
		"BenchmarkB", "+25.0%",
		"BenchmarkGone", "removed",
		"BenchmarkNew", "new",
		"2 shared benchmarks",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestCompareImprovementOnly(t *testing.T) {
	old := map[string]Metrics{"BenchmarkA": {NsPerOp: 1000}}
	cur := map[string]Metrics{"BenchmarkA": {NsPerOp: 900}}
	if _, worst := compare(old, cur, 0); worst >= 0 {
		t.Errorf("worst = %v for a pure improvement, want negative", worst)
	}
}

func TestCompareNoShared(t *testing.T) {
	_, worst := compare(map[string]Metrics{"BenchmarkA": {NsPerOp: 1}}, map[string]Metrics{"BenchmarkB": {NsPerOp: 1}}, 0)
	if worst != 0 {
		t.Errorf("worst = %v with no shared benchmarks, want 0", worst)
	}
}

func TestCompareMinNsFloor(t *testing.T) {
	old := map[string]Metrics{
		"BenchmarkTiny": {NsPerOp: 100}, // noise at -benchtime 1x
		"BenchmarkReal": {NsPerOp: 50000},
	}
	cur := map[string]Metrics{
		"BenchmarkTiny": {NsPerOp: 900}, // +800%, below the floor in both files
		"BenchmarkReal": {NsPerOp: 60000},
	}
	report, worst := compare(old, cur, 5000)
	if worst != 20 {
		t.Errorf("worst = %v with the 5000ns floor, want 20 (BenchmarkReal)", worst)
	}
	// The floored benchmark still prints.
	if !strings.Contains(report, "BenchmarkTiny") || !strings.Contains(report, "+800.0%") {
		t.Errorf("report does not list the floored benchmark:\n%s", report)
	}
	// A benchmark crossing the floor counts: 100ns -> 6000ns.
	cur["BenchmarkTiny"] = Metrics{NsPerOp: 6000}
	if _, worst := compare(old, cur, 5000); worst != 5900 {
		t.Errorf("worst = %v for a benchmark crossing the floor, want 5900", worst)
	}
}
