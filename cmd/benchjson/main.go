// Command benchjson converts `go test -bench` output into the
// machine-readable BENCH_<n>.json trajectory format: one object per
// benchmark with ns/op, B/op and allocs/op. It reads the benchmark
// text from stdin (or -in), writes JSON to stdout (or -o), and can
// embed a previously written JSON file as the "baseline" section so a
// single artifact records before and after:
//
//	go test -bench . -benchmem ./... | benchjson -o BENCH_2.json -baseline BENCH_1.json
//
// Lines that are not benchmark results (package headers, PASS/ok) are
// ignored. Repeated runs of one benchmark (-count > 1) are averaged.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Metrics is one benchmark's measured cost per operation.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// File is the BENCH_<n>.json schema.
type File struct {
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to
	// its metrics for this run.
	Benchmarks map[string]Metrics `json:"benchmarks"`
	// Baseline optionally carries the previous trajectory point the
	// run is compared against (the -baseline file's Benchmarks).
	Baseline map[string]Metrics `json:"baseline,omitempty"`
}

func main() {
	in := flag.String("in", "", "benchmark text input (default stdin)")
	out := flag.String("o", "", "JSON output path (default stdout)")
	baseline := flag.String("baseline", "", "earlier BENCH_*.json to embed as the baseline section")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	bench, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(bench) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found in input"))
	}
	file := File{Benchmarks: bench}
	if *baseline != "" {
		prev, err := readBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
		file.Baseline = prev
	}
	enc, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(enc); err != nil {
			fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// parse extracts benchmark result lines. The format is
//
//	BenchmarkName-8   100   123456 ns/op   789 B/op   12 allocs/op
//
// with the "-8" GOMAXPROCS suffix stripped from the name and any
// further value/unit pairs (e.g. MB/s) ignored.
func parse(r io.Reader) (map[string]Metrics, error) {
	type acc struct {
		m Metrics
		n int
	}
	sums := make(map[string]*acc)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var m Metrics
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
				seen = true
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		if !seen {
			continue
		}
		a := sums[name]
		if a == nil {
			a = &acc{}
			sums[name] = a
		}
		a.m.NsPerOp += m.NsPerOp
		a.m.BytesPerOp += m.BytesPerOp
		a.m.AllocsPerOp += m.AllocsPerOp
		a.n++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]Metrics, len(sums))
	for name, a := range sums {
		out[name] = Metrics{
			NsPerOp:     a.m.NsPerOp / float64(a.n),
			BytesPerOp:  a.m.BytesPerOp / float64(a.n),
			AllocsPerOp: a.m.AllocsPerOp / float64(a.n),
		}
	}
	return out, nil
}

// readBaseline loads an earlier BENCH_*.json (or a bare benchmark map)
// for embedding.
func readBaseline(path string) (map[string]Metrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if f.Benchmarks != nil {
		return f.Benchmarks, nil
	}
	var bare map[string]Metrics
	if err := json.Unmarshal(data, &bare); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return bare, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
