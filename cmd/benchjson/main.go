// Command benchjson converts `go test -bench` output into the
// machine-readable BENCH_<n>.json trajectory format: one object per
// benchmark with ns/op, B/op and allocs/op. It reads the benchmark
// text from stdin (or -in), writes JSON to stdout (or -o), and can
// embed a previously written JSON file as the "baseline" section so a
// single artifact records before and after:
//
//	go test -bench . -benchmem ./... | benchjson -o BENCH_2.json -baseline BENCH_1.json
//
// Lines that are not benchmark results (package headers, PASS/ok) are
// ignored. Repeated runs of one benchmark (-count > 1) are averaged.
//
// With -compare the command instead diffs two trajectory files and
// renders a delta table (ns/op, B/op, allocs/op, percent change):
//
//	benchjson -compare BENCH_2.json BENCH_3.json [-fail-above 25] [-min-ns 0]
//
// -fail-above makes the exit status enforce a regression budget: any
// shared benchmark whose ns/op grew by more than the given percentage
// fails the run (CI's bench-short job uses this against the committed
// trajectory point). -min-ns excludes benchmarks whose ns/op is below
// the floor in BOTH files from the budget (they still print):
// sub-microsecond benchmarks measured with -benchtime 1x are timer
// overhead, not signal.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's measured cost per operation.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// File is the BENCH_<n>.json schema.
type File struct {
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to
	// its metrics for this run.
	Benchmarks map[string]Metrics `json:"benchmarks"`
	// Baseline optionally carries the previous trajectory point the
	// run is compared against (the -baseline file's Benchmarks).
	Baseline map[string]Metrics `json:"baseline,omitempty"`
}

func main() {
	in := flag.String("in", "", "benchmark text input (default stdin)")
	out := flag.String("o", "", "JSON output path (default stdout)")
	baseline := flag.String("baseline", "", "earlier BENCH_*.json to embed as the baseline section")
	compareMode := flag.Bool("compare", false, "diff two BENCH_*.json files given as arguments instead of parsing benchmark text")
	failAbove := flag.Float64("fail-above", 0, "with -compare: exit non-zero if any ns/op regression exceeds this percentage (0 disables)")
	minNs := flag.Float64("min-ns", 0, "with -compare: exclude benchmarks below this ns/op in both files from the -fail-above budget")
	flag.Parse()

	if *compareMode {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare wants exactly two JSON files, got %d arguments", flag.NArg()))
		}
		old, err := readBaseline(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		cur, err := readBaseline(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		report, worst := compare(old, cur, *minNs)
		if _, err := io.WriteString(os.Stdout, report); err != nil {
			fatal(err)
		}
		if *failAbove > 0 && worst > *failAbove {
			fatal(fmt.Errorf("worst ns/op regression %+.1f%% exceeds the -fail-above budget of %.1f%%", worst, *failAbove))
		}
		return
	}

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	bench, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(bench) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found in input"))
	}
	file := File{Benchmarks: bench}
	if *baseline != "" {
		prev, err := readBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
		file.Baseline = prev
	}
	enc, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(enc); err != nil {
			fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// parse extracts benchmark result lines. The format is
//
//	BenchmarkName-8   100   123456 ns/op   789 B/op   12 allocs/op
//
// with the "-8" GOMAXPROCS suffix stripped from the name and any
// further value/unit pairs (e.g. MB/s) ignored.
func parse(r io.Reader) (map[string]Metrics, error) {
	type acc struct {
		m Metrics
		n int
	}
	sums := make(map[string]*acc)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var m Metrics
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
				seen = true
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		if !seen {
			continue
		}
		a := sums[name]
		if a == nil {
			a = &acc{}
			sums[name] = a
		}
		a.m.NsPerOp += m.NsPerOp
		a.m.BytesPerOp += m.BytesPerOp
		a.m.AllocsPerOp += m.AllocsPerOp
		a.n++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]Metrics, len(sums))
	for name, a := range sums {
		out[name] = Metrics{
			NsPerOp:     a.m.NsPerOp / float64(a.n),
			BytesPerOp:  a.m.BytesPerOp / float64(a.n),
			AllocsPerOp: a.m.AllocsPerOp / float64(a.n),
		}
	}
	return out, nil
}

// compare renders the delta table between two benchmark maps and
// returns it with the worst ns/op regression percentage among shared
// benchmarks (negative when everything got faster). Benchmarks present
// in only one file are listed but carry no delta; shared benchmarks
// below minNs ns/op in both files print but stay out of the worst
// computation.
func compare(old, cur map[string]Metrics, minNs float64) (string, float64) {
	names := make([]string, 0, len(old)+len(cur))
	for name := range old {
		names = append(names, name)
	}
	for name := range cur {
		if _, ok := old[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var b strings.Builder
	fmt.Fprintf(&b, "%-52s %14s %14s %9s %9s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "B/op", "allocs")
	worst := math.Inf(-1)
	shared := 0
	for _, name := range names {
		o, haveOld := old[name]
		c, haveCur := cur[name]
		switch {
		case !haveCur:
			fmt.Fprintf(&b, "%-52s %14.0f %14s %9s %9s %8s\n", name, o.NsPerOp, "-", "removed", "-", "-")
		case !haveOld:
			fmt.Fprintf(&b, "%-52s %14s %14.0f %9s %9s %8s\n", name, "-", c.NsPerOp, "new", "-", "-")
		default:
			shared++
			d := pct(o.NsPerOp, c.NsPerOp)
			if d > worst && (o.NsPerOp >= minNs || c.NsPerOp >= minNs) {
				worst = d
			}
			fmt.Fprintf(&b, "%-52s %14.0f %14.0f %+8.1f%% %+8.1f%% %+7.1f%%\n",
				name, o.NsPerOp, c.NsPerOp, d, pct(o.BytesPerOp, c.BytesPerOp), pct(o.AllocsPerOp, c.AllocsPerOp))
		}
	}
	if shared == 0 {
		worst = 0
	}
	fmt.Fprintf(&b, "\n%d shared benchmarks; worst ns/op regression %+.1f%%\n", shared, worst)
	return b.String(), worst
}

// pct is the percent change from old to new; a vanished or zero old
// value yields 0 so synthetic counters (0 allocs/op) do not divide by
// zero.
func pct(old, new float64) float64 {
	if old == 0 { //lint:allow floatcmp exact zero is the division guard, not a tolerance test
		return 0
	}
	return (new - old) / old * 100
}

// readBaseline loads an earlier BENCH_*.json (or a bare benchmark map)
// for embedding.
func readBaseline(path string) (map[string]Metrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if f.Benchmarks != nil {
		return f.Benchmarks, nil
	}
	var bare map[string]Metrics
	if err := json.Unmarshal(data, &bare); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return bare, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
