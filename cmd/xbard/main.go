// Command xbard is the long-running HTTP daemon over the crossbar
// analytical engine: blocking and concurrency (Algorithms 1 and 2),
// the Section 4 revenue measures, admission decisions and amortized
// sub-size sweeps, served as JSON with an LRU solver cache and
// single-flight deduplication (see internal/server and docs/SERVER.md).
//
// Usage:
//
//	xbard [-addr :8480] [-debug-addr 127.0.0.1:8481] \
//	      [-workers n] [-tile t] [-cache entries] [-scenario-cache entries] \
//	      [-max-dim n] [-max-asym-dim n] \
//	      [-max-body bytes] [-timeout d] [-drain d] [-max-concurrent n] \
//	      [-max-grid-points n] \
//	      [-node-id id -peers id=url,...] [-vnodes n] [-hot-replicas k] \
//	      [-cpuprofile f] [-memprofile f] [-trace f]
//
// The daemon serves until SIGTERM or SIGINT, then drains in-flight
// requests within -drain and exits 0 on a clean shutdown. -debug-addr
// (off by default, keep it on loopback: no auth) adds net/http/pprof
// and a second /metrics on a separate mux.
//
// -peers (with -node-id naming this node's entry) turns a fleet of
// xbard processes into one logical cache: a consistent-hash ring
// assigns every cache key an owner and requests are forwarded to it,
// so the fleet fills each lattice once no matter which node a client
// hits. Without -peers the daemon is the plain single-node server.
// See docs/CLUSTER.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xbar/internal/cli"
	"xbar/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xbard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr          = fs.String("addr", ":8480", "API listen address")
		debugAddr     = fs.String("debug-addr", "", "pprof/metrics listen address (empty = disabled; keep on loopback)")
		workers       = fs.Int("workers", 0, "wavefront fill workers per solve (0 = GOMAXPROCS divided across -max-concurrent)")
		tile          = fs.Int("tile", 0, "wavefront tile edge in cells (0 = automatic)")
		cacheSize     = fs.Int("cache", 0, "retained operating points in the solver cache (0 = default 64)")
		scenarioCache = fs.Int("scenario-cache", 0, "retained /v1/scenario results (0 = default 64)")
		maxDim        = fs.Int("max-dim", 0, "largest switch dimension the exact tier fills a lattice for (0 = default 1024)")
		maxAsymDim    = fs.Int("max-asym-dim", 0, "largest switch dimension under a dispatch policy; (max-dim, max-asym-dim] is asymptotic-only (0 = default 1<<20)")
		maxConcurrent = fs.Int("max-concurrent", 0, "solver slots: concurrent fills and lattice reads (0 = GOMAXPROCS)")
		maxGridPoints = fs.Int("max-grid-points", 0, "largest accepted /v1/grid point list (0 = default 256)")
		maxBody       = fs.Int64("max-body", 0, "request body cap in bytes (0 = default 1 MiB)")
		timeout       = fs.Duration("timeout", 0, "per-request timeout (0 = default 30s)")
		drain         = fs.Duration("drain", 0, "graceful-shutdown drain budget (0 = default 15s)")
		nodeID        = fs.String("node-id", "", "this node's id in -peers (required with -peers)")
		peers         = fs.String("peers", "", "cluster membership as id=url,id=url,... including this node (empty = single-node)")
		vnodes        = fs.Int("vnodes", 0, "virtual nodes per member on the consistent-hash ring (0 = default 64)")
		hotReplicas   = fs.Int("hot-replicas", 0, "ring successors to replicate hot keys to (0 = default 1, -1 = off)")
	)
	prof := cli.NewProfiler(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "xbard: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	peerMap, err := parsePeers(*peers)
	if err != nil {
		fmt.Fprintln(stderr, "xbard:", err)
		return 2
	}

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(stderr, "xbard:", err)
		return 1
	}

	srv, err := server.New(server.Config{
		Addr:              *addr,
		DebugAddr:         *debugAddr,
		Workers:           *workers,
		Tile:              *tile,
		CacheSize:         *cacheSize,
		ScenarioCacheSize: *scenarioCache,
		MaxDim:            *maxDim,
		MaxAsymDim:        *maxAsymDim,
		MaxConcurrent:     *maxConcurrent,
		MaxGridPoints:     *maxGridPoints,
		MaxBodyBytes:      *maxBody,
		RequestTimeout:    *timeout,
		DrainTimeout:      *drain,
		NodeID:            *nodeID,
		Peers:             peerMap,
		VNodes:            *vnodes,
		HotReplicas:       *hotReplicas,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, time.Now().Format("2006-01-02T15:04:05.000Z07:00")+" "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(stderr, "xbard:", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	code := 0
	if err := srv.Run(ctx); err != nil {
		fmt.Fprintln(stderr, "xbard:", err)
		code = 1
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(stderr, "xbard:", err)
		code = 1
	}
	return code
}

// parsePeers parses the -peers value: comma-separated id=url pairs,
// one per cluster member including this node. "" means single-node.
func parsePeers(spec string) (map[string]string, error) {
	if spec == "" {
		return nil, nil
	}
	peers := make(map[string]string)
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		id, url, ok := strings.Cut(pair, "=")
		id, url = strings.TrimSpace(id), strings.TrimSpace(url)
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("-peers entry %q, want id=url", pair)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("-peers id %q given twice", id)
		}
		peers[id] = url
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("-peers %q holds no id=url entries", spec)
	}
	return peers, nil
}
