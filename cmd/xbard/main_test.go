package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"xbar/internal/core"
	"xbar/internal/server"
)

// syncBuffer is a goroutine-safe stderr sink the test can poll while
// the daemon runs.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitForLine polls the buffer for a line containing marker and
// returns the text after it (up to end of line).
func waitForLine(t *testing.T, buf *syncBuffer, marker string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s := buf.String()
		if i := strings.Index(s, marker); i >= 0 {
			rest := s[i+len(marker):]
			if j := strings.IndexByte(rest, '\n'); j >= 0 {
				return strings.TrimSpace(rest[:j])
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("daemon never logged %q; stderr so far:\n%s", marker, buf.String())
	return ""
}

func TestBadFlags(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errBuf); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code := run([]string{"positional"}, &out, &errBuf); code != 2 {
		t.Errorf("positional argument: exit %d, want 2", code)
	}
	errBuf.Reset()
	if code := run([]string{"-cache", "-1", "-addr", "127.0.0.1:0"}, &out, &errBuf); code != 1 {
		t.Errorf("invalid config: exit %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "CacheSize") {
		t.Errorf("invalid config stderr = %q", errBuf.String())
	}
}

func TestParsePeers(t *testing.T) {
	got, err := parsePeers(" a=http://h1:1 , b=http://h2:2 ")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"a": "http://h1:1", "b": "http://h2:2"}
	if len(got) != len(want) || got["a"] != want["a"] || got["b"] != want["b"] {
		t.Fatalf("parsePeers = %v, want %v", got, want)
	}
	if got, err := parsePeers(""); err != nil || got != nil {
		t.Fatalf("empty spec: %v, %v", got, err)
	}
	for _, bad := range []string{"a", "=http://h", "a=", "a=http://h,a=http://h2", ","} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("parsePeers(%q) accepted", bad)
		}
	}
}

func TestBadPeerFlags(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-peers", "nourl", "-addr", "127.0.0.1:0"}, &out, &errBuf); code != 2 {
		t.Errorf("malformed -peers: exit %d, want 2", code)
	}
	errBuf.Reset()
	// A well-formed -peers whose -node-id is not a member is a config
	// error from server.New, not a flag error.
	if code := run([]string{"-peers", "a=http://h", "-node-id", "zz", "-addr", "127.0.0.1:0"}, &out, &errBuf); code != 1 {
		t.Errorf("non-member node id: exit %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "NodeID") {
		t.Errorf("non-member node id stderr = %q", errBuf.String())
	}
}

// TestDaemonLifecycle runs the real daemon path: port-0 listeners, a
// solve over the wire checked against core.Solve, pprof on the debug
// mux, then SIGTERM and a clean drain with exit code 0.
func TestDaemonLifecycle(t *testing.T) {
	var stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0", "-drain", "5s"},
			io.Discard, &stderr)
	}()
	addr := waitForLine(t, &stderr, "xbard: listening on ")
	debugAddr := waitForLine(t, &stderr, "xbard: debug (pprof, metrics) on ")

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", resp.StatusCode)
	}

	body := `{"n1":8,"n2":8,"classes":[{"name":"smooth","a":1,"alpha":0.0024,"mu":1}]}`
	resp, err = http.Post("http://"+addr+"/v1/blocking", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var br server.BlockingResponse
	err = json.NewDecoder(resp.Body).Decode(&br)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.Solve(core.NewSwitch(8, 8, core.AggregateClass{Name: "smooth", A: 1, AlphaTilde: 0.0024, Mu: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if br.Classes[0].Blocking != direct.Blocking[0] {
		t.Errorf("daemon blocking %x, core.Solve %x", br.Classes[0].Blocking, direct.Blocking[0])
	}

	resp, err = http.Get("http://" + debugAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline %d", resp.StatusCode)
	}

	// The daemon's signal handler is installed before the listening
	// line is logged, so SIGTERM to ourselves lands on it.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d after SIGTERM; stderr:\n%s", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained cleanly") {
		t.Errorf("no clean-drain log line; stderr:\n%s", stderr.String())
	}
}
